package baseline

import (
	"sort"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/pattern"
	"github.com/cwru-db/fgs/internal/submod"
)

// MMPGConfig configures the diversified reformulation adaptation.
type MMPGConfig struct {
	// R is the reconstruction horizon used when charging corrections.
	R int
	// K is the number of reformulated patterns to select.
	K int
	// N truncates the covered node set.
	N int
	// Lambda trades coverage against diversity in the greedy objective;
	// default 0.5.
	Lambda float64
	// Mining bounds reformulation generation (Radius forced to R).
	Mining mining.Config
}

// MMPG adapts graph query reformulation with diversity [34]: starting from a
// seed pattern (the most frequent single-label pattern over the groups), it
// generates reformulations — patterns extended with one or more edges or
// literals — and greedily selects k of them maximizing the classic
// coverage-plus-diversity objective
//
//	F(S) = λ · |cover(S)| + (1-λ) · Σ_{P,Q ∈ S} (1 - |cover(P) ∩ cover(Q)| / |cover(P) ∪ cover(Q)|)
//
// Reformulations inherently grow the seed ("adding edges"), which is why
// MMPG produces the largest summaries in Fig. 8(b).
func MMPG(g *graph.Graph, groups *submod.Groups, cfg MMPGConfig) Result {
	clock := cfg.Mining.Obs.GetClock()
	start := clock.Now()
	if cfg.Lambda <= 0 || cfg.Lambda >= 1 {
		cfg.Lambda = 0.5
	}
	cfg.Mining.Radius = cfg.R
	// The reformulation pool: every grown pattern is a reformulation of the
	// label seed it grew from. Only multi-element patterns (>= 1 edge or
	// literal) count as genuine reformulations.
	freq := mining.Frequent(g, groups.All(), cfg.Mining, cfg.Mining.MaxPatterns, 1)
	type cand struct {
		p     *pattern.Pattern
		cover graph.NodeSet
		list  []graph.NodeID
	}
	var pool []cand
	for _, f := range freq {
		if len(f.P.Edges) == 0 && len(f.P.Nodes[f.P.Focus].Literals) == 0 {
			continue // the bare seed is not a reformulation
		}
		pool = append(pool, cand{p: f.P, cover: graph.NodeSetOf(f.Covered), list: f.Covered})
	}

	// Greedy diversified selection.
	var chosen []cand
	used := make([]bool, len(pool))
	coveredSet := graph.NewNodeSet(0)
	for len(chosen) < cfg.K {
		best := -1
		bestScore := -1.0
		for i, c := range pool {
			if used[i] {
				continue
			}
			gain := 0
			for _, v := range c.list {
				if !coveredSet.Has(v) {
					gain++
				}
			}
			div := 0.0
			for _, ch := range chosen {
				div += 1 - jaccard(c.cover, ch.cover)
			}
			score := cfg.Lambda*float64(gain) + (1-cfg.Lambda)*div
			if score > bestScore {
				bestScore = score
				best = i
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		chosen = append(chosen, pool[best])
		for _, v := range pool[best].list {
			coveredSet.Add(v)
		}
	}

	// Merge covered nodes round-robin across the chosen patterns so the
	// budget truncation preserves the diversity the selection optimized for
	// (a concatenation would let the first pattern's majority cover crowd
	// out the rest).
	var covered []graph.NodeID
	seen := graph.NewNodeSet(cfg.N)
	structure := 0
	patterns := make([]*pattern.Pattern, 0, len(chosen))
	lists := make([][]graph.NodeID, 0, len(chosen))
	for _, c := range chosen {
		patterns = append(patterns, c.p)
		structure += c.p.Size()
		sorted := append([]graph.NodeID(nil), c.list...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		lists = append(lists, sorted)
	}
	for pos := 0; len(covered) < cfg.N; pos++ {
		advanced := false
		for _, l := range lists {
			if pos < len(l) {
				advanced = true
				covered = dedupAppend(covered, l[pos:pos+1], seen)
				if len(covered) == cfg.N {
					break
				}
			}
		}
		if !advanced {
			break
		}
	}

	corrections := countCorrections(g, patterns, covered, cfg.R, cfg.Mining.EmbedCap)
	return Result{
		Patterns:      patterns,
		Covered:       covered,
		StructureSize: structure,
		Corrections:   corrections,
		Elapsed:       clock.Now().Sub(start),
	}
}

// jaccard returns |a ∩ b| / |a ∪ b|, with 0 for two empty sets.
func jaccard(a, b graph.NodeSet) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 0
	}
	inter := 0
	small, big := a, b
	if small.Len() > big.Len() {
		small, big = big, small
	}
	for v := range small {
		if big.Has(v) {
			inter++
		}
	}
	return float64(inter) / float64(a.Len()+b.Len()-inter)
}

package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cwru-db/fgs/internal/leakcheck"
	"github.com/cwru-db/fgs/internal/obs"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{32}$`)

// syncBuffer is a goroutine-safe bytes.Buffer for log/dump capture: handler
// goroutines write while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDeterminismTracingOnOff is the tracing-inertness contract: the
// identical request sequence with tracing on and off yields byte-identical
// response bodies. Trace state may only ever reach headers, logs, and
// metrics — never the response.
func TestDeterminismTracingOnOff(t *testing.T) {
	_, traced := newTestServer(t, Config{})
	_, untraced := newTestServer(t, Config{DisableTracing: true})
	a := runScript(t, traced)
	b := runScript(t, untraced)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("step %d (%s %s): tracing on vs off differ:\n  %s\n  %s",
				i, determinismScript[i].path, determinismScript[i].body, a[i], b[i])
		}
	}
}

func TestTraceHeaders(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{})

	resp, body := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, http.StatusOK)
	tid := resp.Header.Get("X-Fgs-Trace")
	if !traceIDRe.MatchString(tid) {
		t.Fatalf("X-Fgs-Trace = %q, want 32 hex digits", tid)
	}
	if got := resp.Header.Get("X-Fgs-Epoch"); got != "0" {
		t.Fatalf("X-Fgs-Epoch = %q, want 0", got)
	}
	st := obs.ParseServerTiming(resp.Header.Get("Server-Timing"))
	for _, stage := range []string{"cache", "admission", "pin", "compute", "encode"} {
		if _, ok := st[stage]; !ok {
			t.Errorf("Server-Timing %q missing stage %s", resp.Header.Get("Server-Timing"), stage)
		}
	}

	// A second identical request is a cache hit: still traced, epoch header
	// present, and the stage breakdown shows the probe without a compute.
	resp, body = post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, http.StatusOK)
	if resp.Header.Get("X-Fgs-Cache") != "hit" {
		t.Fatal("second request missed the cache")
	}
	if got := resp.Header.Get("X-Fgs-Epoch"); got != "0" {
		t.Fatalf("cache hit X-Fgs-Epoch = %q, want 0", got)
	}
	hit := resp.Header.Get("X-Fgs-Trace")
	if !traceIDRe.MatchString(hit) || hit == tid {
		t.Fatalf("cache hit X-Fgs-Trace = %q (first was %q): want a fresh valid ID", hit, tid)
	}
	st = obs.ParseServerTiming(resp.Header.Get("Server-Timing"))
	if _, ok := st["cache"]; !ok {
		t.Errorf("cache hit Server-Timing %q missing cache stage", resp.Header.Get("Server-Timing"))
	}
	if _, ok := st["compute"]; ok {
		t.Errorf("cache hit Server-Timing %q reports a compute stage", resp.Header.Get("Server-Timing"))
	}

	// The epoch header follows writes: after an applied update, compute
	// responses carry the new epoch.
	resp, body = post(t, ts, "/v1/update", `{"insert":[{"from":0,"to":12,"label":"corev"}]}`)
	wantStatus(t, resp, body, http.StatusOK)
	if got := resp.Header.Get("X-Fgs-Epoch"); got != "1" {
		t.Fatalf("update X-Fgs-Epoch = %q, want 1", got)
	}
	resp, body = get(t, ts, "/v1/stats")
	wantStatus(t, resp, body, http.StatusOK)
	if got := resp.Header.Get("X-Fgs-Epoch"); got != "1" {
		t.Fatalf("stats X-Fgs-Epoch = %q, want 1", got)
	}
}

func TestTraceparentPropagation(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{})
	const parentID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+parentID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Fgs-Trace"); got != parentID {
		t.Fatalf("X-Fgs-Trace = %q, want propagated %q", got, parentID)
	}

	// A malformed traceparent falls back to a minted ID rather than failing.
	req.Header.Set("traceparent", "00-zzz-bad-01")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Fgs-Trace"); !traceIDRe.MatchString(got) || got == parentID {
		t.Fatalf("X-Fgs-Trace = %q after malformed traceparent, want fresh minted ID", got)
	}
}

func TestTracingDisabledOmitsHeaders(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{DisableTracing: true})
	resp, body := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, http.StatusOK)
	for _, h := range []string{"X-Fgs-Trace", "Server-Timing"} {
		if got := resp.Header.Get(h); got != "" {
			t.Errorf("%s = %q with tracing disabled, want absent", h, got)
		}
	}
	// The epoch header is a satellite of the response, not of tracing.
	if got := resp.Header.Get("X-Fgs-Epoch"); got != "0" {
		t.Errorf("X-Fgs-Epoch = %q with tracing disabled, want 0", got)
	}
	resp, body = get(t, ts, "/debug/fgs/flightrecorder")
	wantStatus(t, resp, body, http.StatusNotFound)
}

func TestDebugViewsEndpoint(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts, "/v1/update", `{"insert":[{"from":0,"to":12,"label":"corev"}]}`)
	wantStatus(t, resp, body, http.StatusOK)

	resp, body = get(t, ts, "/debug/fgs/views")
	wantStatus(t, resp, body, http.StatusOK)
	var d ViewsDebug
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatalf("bad views debug body %s: %v", body, err)
	}
	if d.Mode != ReadModeMVCC || d.Epoch != 1 || d.Current.Epoch != 1 {
		t.Fatalf("views debug = %+v, want mvcc at epoch 1", d)
	}
	if d.Replicas != d.MaxViews || d.Publishes != 1 || d.LogLen == 0 {
		t.Fatalf("views debug pool state = %+v", d)
	}

	// Locked mode degrades to mode+epoch.
	_, locked := newTestServer(t, Config{ReadMode: ReadModeLocked})
	resp, body = get(t, locked, "/debug/fgs/views")
	wantStatus(t, resp, body, http.StatusOK)
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.Mode != ReadModeLocked {
		t.Fatalf("locked views debug mode = %q", d.Mode)
	}
}

func TestDebugCacheEndpoint(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, http.StatusOK)

	resp, body = get(t, ts, "/debug/fgs/cache")
	wantStatus(t, resp, body, http.StatusOK)
	var d CacheDebug
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatalf("bad cache debug body %s: %v", body, err)
	}
	if d.Stats.Entries != 1 || len(d.Entries) != 1 {
		t.Fatalf("cache debug = %+v, want one entry", d)
	}
	if !strings.HasPrefix(d.Entries[0].Key, "0|") || d.Entries[0].Bytes <= 0 {
		t.Fatalf("cache entry = %+v, want epoch-0-prefixed key with a body", d.Entries[0])
	}
}

func TestDebugFairnessEndpoint(t *testing.T) {
	leakcheck.Check(t)
	s, ts := newTestServer(t, Config{})
	resp, body := get(t, ts, "/debug/fgs/fairness")
	wantStatus(t, resp, body, http.StatusOK)
	var d FairnessResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatalf("bad fairness body %s: %v", body, err)
	}

	rc := s.acquireRead(nil)
	counts := s.groups.Counts(rc.summary.Covered)
	wantTotal := len(rc.summary.Covered)
	rc.release()

	if d.Epoch != 0 || d.CoveredTotal != wantTotal {
		t.Fatalf("fairness = %+v, want epoch 0 coveredTotal %d", d, wantTotal)
	}
	if len(d.Groups) != 2 || d.Groups[0].Name != "male" || d.Groups[1].Name != "female" {
		t.Fatalf("fairness groups = %+v", d.Groups)
	}
	allSat := true
	for i, g := range d.Groups {
		if g.Covered != counts[i] {
			t.Errorf("group %s covered = %d, want %d", g.Name, g.Covered, counts[i])
		}
		wantSat := g.Covered >= g.Lower && g.Covered <= g.Upper
		if g.Satisfied != wantSat {
			t.Errorf("group %s satisfied = %v, bounds [%d,%d] covered %d", g.Name, g.Satisfied, g.Lower, g.Upper, g.Covered)
		}
		if g.Size == 0 || g.Coverage != float64(g.Covered)/float64(g.Size) {
			t.Errorf("group %s coverage = %v (covered %d size %d)", g.Name, g.Coverage, g.Covered, g.Size)
		}
		allSat = allSat && wantSat
	}
	if d.Satisfied != allSat {
		t.Errorf("overall satisfied = %v, want %v", d.Satisfied, allSat)
	}
}

func TestDebugFlightRecorderEndpoint(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, http.StatusOK)
	tid := resp.Header.Get("X-Fgs-Trace")

	resp, body = get(t, ts, "/debug/fgs/flightrecorder")
	wantStatus(t, resp, body, http.StatusOK)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("flight recorder Content-Type = %q", ct)
	}
	out := string(body)
	if !strings.Contains(out, "summarize") || !strings.Contains(out, tid) {
		t.Fatalf("flight recorder missing the summarize request (trace %s):\n%s", tid, out)
	}

	// Browsing the recorder must not record the browse: a second fetch still
	// shows no debug-flightrecorder entries.
	resp, body = get(t, ts, "/debug/fgs/flightrecorder")
	wantStatus(t, resp, body, http.StatusOK)
	if strings.Contains(string(body), "debug-flightrecorder") {
		t.Fatalf("flight recorder recorded its own browse:\n%s", body)
	}
}

func TestSlowRequestLogAndDump(t *testing.T) {
	leakcheck.Check(t)
	var logs, dump syncBuffer
	_, ts := newTestServer(t, Config{
		SlowRequest: time.Nanosecond, // every request is "slow"
		Log:         slog.New(slog.NewTextHandler(&logs, nil)),
		FlightDump:  &dump,
	})
	resp, body := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, http.StatusOK)
	tid := resp.Header.Get("X-Fgs-Trace")

	if out := logs.String(); !strings.Contains(out, "slow request") || !strings.Contains(out, tid) {
		t.Fatalf("slow-request log missing (trace %s):\n%s", tid, out)
	}
	if out := dump.String(); !strings.Contains(out, "reason=slow") {
		t.Fatalf("flight dump missing after slow request:\n%s", out)
	}
}

func TestPanicDumpsFlightRecorder(t *testing.T) {
	leakcheck.Check(t)
	var logs, dump syncBuffer
	s, ts := newTestServer(t, Config{
		Log:        slog.New(slog.NewTextHandler(&logs, nil)),
		FlightDump: &dump,
	})
	var fired atomic.Bool
	s.testHook = func(endpoint string) {
		if endpoint == "workload" && fired.CompareAndSwap(false, true) {
			panic("poisoned request")
		}
	}
	resp, body := post(t, ts, "/v1/workload", ``)
	wantStatus(t, resp, body, http.StatusInternalServerError)
	tid := resp.Header.Get("X-Fgs-Trace")

	if out := logs.String(); !strings.Contains(out, "request failed") || !strings.Contains(out, tid) {
		t.Fatalf("5xx log missing (trace %s):\n%s", tid, out)
	}
	out := dump.String()
	if !strings.Contains(out, "reason=5xx") || !strings.Contains(out, tid) {
		t.Fatalf("flight dump missing after 5xx:\n%s", out)
	}

	// The server keeps serving after the poisoned request.
	resp, body = post(t, ts, "/v1/workload", ``)
	wantStatus(t, resp, body, http.StatusOK)
}

func TestPublishLogged(t *testing.T) {
	leakcheck.Check(t)
	var logs syncBuffer
	_, ts := newTestServer(t, Config{Log: slog.New(slog.NewTextHandler(&logs, nil))})
	resp, body := post(t, ts, "/v1/update", `{"insert":[{"from":0,"to":12,"label":"corev"}]}`)
	wantStatus(t, resp, body, http.StatusOK)
	out := logs.String()
	if !strings.Contains(out, "publish") || !strings.Contains(out, "epoch=1") {
		t.Fatalf("publish log missing:\n%s", out)
	}
}

func TestStageMetricsExported(t *testing.T) {
	leakcheck.Check(t)
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, http.StatusOK)
	tid := resp.Header.Get("X-Fgs-Trace")

	resp, body = get(t, ts, "/metrics")
	wantStatus(t, resp, body, http.StatusOK)
	out := string(body)
	for _, want := range []string{
		`fgs_req_stage_us_count{stage="compute"} 1`,
		`trace_id="` + tid + `"`,
		`fgs_fairness_covered{group="male"}`,
		`fgs_fairness_lower_bound{group="female"} 1`,
		`fgs_flight_recorded_total`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

package graph

import (
	"math/rand"
	"testing"
)

// Tests for the dense EdgeID space: stability while an edge lives, sentinel
// behavior after removal, and LIFO free-list reuse keeping the space dense
// under churn (see DESIGN.md §9).

func TestEdgeIDStableAndResolvable(t *testing.T) {
	g := New()
	a := g.AddNode("user", nil)
	b := g.AddNode("user", nil)
	c := g.AddNode("user", nil)
	for _, pair := range [][2]NodeID{{a, b}, {b, c}, {a, c}} {
		if err := g.AddEdge(pair[0], pair[1], "e"); err != nil {
			t.Fatal(err)
		}
	}
	lid, _ := g.EdgeLabelID("e")
	if g.EdgeIDBound() != 3 {
		t.Fatalf("EdgeIDBound = %d, want 3", g.EdgeIDBound())
	}
	// Every adjacency entry carries the ID that EdgeIDOf resolves for its ref,
	// in both directions.
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, e := range g.Out(v) {
			ref := EdgeRef{From: v, To: e.To, Label: e.Label}
			id, ok := g.EdgeIDOf(ref)
			if !ok || id != e.ID {
				t.Fatalf("EdgeIDOf(%v) = %d,%v, adjacency says %d", ref, id, ok, e.ID)
			}
			if got := g.EdgeRefOf(id); got != ref {
				t.Fatalf("EdgeRefOf(%d) = %v, want %v", id, got, ref)
			}
		}
		for _, e := range g.In(v) {
			ref := EdgeRef{From: e.To, To: v, Label: e.Label}
			if id, ok := g.EdgeIDOf(ref); !ok || id != e.ID {
				t.Fatalf("in-adjacency ID mismatch for %v", ref)
			}
		}
	}
	_ = lid
}

func TestEdgeIDFreeListReuse(t *testing.T) {
	g := New()
	a := g.AddNode("user", nil)
	b := g.AddNode("user", nil)
	c := g.AddNode("user", nil)
	mustAdd := func(from, to NodeID, label string) EdgeID {
		t.Helper()
		if err := g.AddEdge(from, to, label); err != nil {
			t.Fatal(err)
		}
		id, ok := g.EdgeIDOf(EdgeRef{From: from, To: to, Label: mustLabel(t, g, label)})
		if !ok {
			t.Fatalf("edge (%d,%d,%s) not resolvable after add", from, to, label)
		}
		return id
	}
	id0 := mustAdd(a, b, "e")
	id1 := mustAdd(b, c, "e")
	id2 := mustAdd(a, c, "e")
	if id0 != 0 || id1 != 1 || id2 != 2 {
		t.Fatalf("insertion IDs = %d,%d,%d, want 0,1,2", id0, id1, id2)
	}

	// Removing frees the ID: the def slot turns into the sentinel and the ref
	// no longer resolves.
	if err := g.RemoveEdge(b, c, "e"); err != nil {
		t.Fatal(err)
	}
	if ref := g.EdgeRefOf(id1); ref.From != -1 || ref.To != -1 {
		t.Fatalf("EdgeRefOf(freed) = %v, want sentinel", ref)
	}
	if _, ok := g.EdgeIDOf(EdgeRef{From: b, To: c, Label: mustLabel(t, g, "e")}); ok {
		t.Fatal("removed edge still resolves to an ID")
	}
	// Surviving edges keep their IDs: no remap on delete.
	if got := g.EdgeRefOf(id2); got != (EdgeRef{From: a, To: c, Label: mustLabel(t, g, "e")}) {
		t.Fatalf("surviving edge remapped: EdgeRefOf(%d) = %v", id2, got)
	}

	// The next insertion reuses the freed slot (LIFO), keeping the bound dense.
	id3 := mustAdd(c, a, "e")
	if id3 != id1 {
		t.Fatalf("reused ID = %d, want freed %d", id3, id1)
	}
	if g.EdgeIDBound() != 3 {
		t.Fatalf("EdgeIDBound = %d after reuse, want 3", g.EdgeIDBound())
	}

	// LIFO order across multiple removals.
	if err := g.RemoveEdge(a, b, "e"); err != nil { // frees 0
		t.Fatal(err)
	}
	if err := g.RemoveEdge(a, c, "e"); err != nil { // frees 2
		t.Fatal(err)
	}
	first := mustAdd(b, a, "e")
	second := mustAdd(c, b, "e")
	if first != id2 || second != id0 {
		t.Fatalf("reuse order = %d,%d, want LIFO %d,%d", first, second, id2, id0)
	}
}

// TestEdgeIDDenseUnderChurn randomly interleaves adds and removes and checks
// the ID space never grows past the high-water mark of live edges.
func TestEdgeIDDenseUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := New()
	const n = 15
	for i := 0; i < n; i++ {
		g.AddNode("x", nil)
	}
	type key struct{ from, to NodeID }
	present := map[key]bool{}
	high := 0
	for step := 0; step < 3000; step++ {
		k := key{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))}
		if present[k] && rng.Intn(2) == 0 {
			if err := g.RemoveEdge(k.from, k.to, "e"); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			present[k] = false
		} else if !present[k] {
			if err := g.AddEdge(k.from, k.to, "e"); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			present[k] = true
		}
		if live := g.NumEdges(); live > high {
			high = live
		}
		if g.EdgeIDBound() > high {
			t.Fatalf("step %d: EdgeIDBound %d exceeds high-water mark %d — free list leaking",
				step, g.EdgeIDBound(), high)
		}
	}
	// Every live edge still resolves and its adjacency ID agrees.
	lid := mustLabel(t, g, "e")
	for k, ok := range present {
		if !ok {
			continue
		}
		id, found := g.EdgeIDOf(EdgeRef{From: k.from, To: k.to, Label: lid})
		if !found {
			t.Fatalf("live edge %v lost its ID", k)
		}
		hit := false
		for _, e := range g.Out(k.from) {
			if e.To == k.to && e.Label == lid && e.ID == id {
				hit = true
			}
		}
		if !hit {
			t.Fatalf("adjacency ID for %v disagrees with index", k)
		}
	}
}

func mustLabel(t *testing.T, g *Graph, label string) LabelID {
	t.Helper()
	lid, ok := g.EdgeLabelID(label)
	if !ok {
		t.Fatalf("label %q not interned", label)
	}
	return lid
}

package experiments

import (
	"fmt"

	"github.com/cwru-db/fgs/internal/cascade"
	"github.com/cwru-db/fgs/internal/core"
	"github.com/cwru-db/fgs/internal/gen"
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/pattern"
	"github.com/cwru-db/fgs/internal/submod"
)

// CaseTalent reproduces the Fig. 11 case study: a pattern query P8 for
// Internet-industry candidates returns a gender-skewed answer; a 2-summary
// computed under equal-opportunity bounds [40,60] yields a balanced,
// representative candidate set and serves as a materialized view that
// answers the query much faster.
func (s *Suite) CaseTalent() ([]Row, error) {
	lki := s.Dataset("LKI")
	m := pattern.NewMatcher(lki, 0)

	// P8: Internet-industry users co-reviewed by at least one peer.
	p8 := &pattern.Pattern{
		Focus: 0,
		Nodes: []pattern.Node{
			{Label: "user", Literals: []pattern.Literal{{Key: "industry", Val: "Internet"}}},
			{Label: "user"},
		},
		Edges: []pattern.Edge{{From: 1, To: 0, Label: "corev"}},
	}
	clock := s.clock()
	fullStart := clock.Now()
	fullMatches := m.Matches(p8)
	fullDur := clock.Now().Sub(fullStart)
	if len(fullMatches) == 0 {
		return nil, fmt.Errorf("case-talent: P8 matched nothing")
	}
	fullMalePct := genderPct(lki, fullMatches, "male")

	// The fair 2-summary under [40,60] gender bounds.
	groups, err := gen.GroupsByAttr(lki, "user", "gender", []string{"male", "female"}, 40, 60)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{R: 2, N: 100, Mining: miningCfg(s.Workers), Obs: s.Obs}
	sum, err := core.APXFGS(lki, groups, submod.NewNeighborCoverage(lki, submod.NeighborsIn, "corev"), cfg)
	if err != nil {
		return nil, err
	}
	sumMalePct := genderPct(lki, sum.Covered, "male")

	// Query-via-view: answer P8 over the summary's covered nodes only.
	viewStart := clock.Now()
	var viewMatches []graph.NodeID
	for _, v := range sum.Covered {
		if ind, ok := lki.AttrString(v, "industry"); ok && ind == "Internet" {
			if mAt := m.MatchAt(p8, v); mAt {
				viewMatches = append(viewMatches, v)
			}
		}
	}
	viewDur := clock.Now().Sub(viewStart)
	viewMalePct := genderPct(lki, viewMatches, "male")

	speedup := 0.0
	if viewDur > 0 {
		speedup = float64(fullDur) / float64(viewDur)
	}
	rows := []Row{
		{Exp: "case-talent", Dataset: "LKI", Algo: "P8-full", Metric: "candidates", Value: float64(len(fullMatches))},
		{Exp: "case-talent", Dataset: "LKI", Algo: "P8-full", Metric: "male_pct", Value: fullMalePct},
		{Exp: "case-talent", Dataset: "LKI", Algo: "summary", Metric: "candidates", Value: float64(len(sum.Covered))},
		{Exp: "case-talent", Dataset: "LKI", Algo: "summary", Metric: "male_pct", Value: sumMalePct},
		{Exp: "case-talent", Dataset: "LKI", Algo: "view-query", Metric: "candidates", Value: float64(len(viewMatches))},
		{Exp: "case-talent", Dataset: "LKI", Algo: "view-query", Metric: "male_pct", Value: viewMalePct},
		{Exp: "case-talent", Dataset: "LKI", Algo: "view-query", Metric: "speedup_x", Value: speedup},
		{Exp: "case-talent", Dataset: "LKI", Algo: "P8-full", Metric: "query_us", Value: float64(fullDur.Microseconds())},
		{Exp: "case-talent", Dataset: "LKI", Algo: "view-query", Metric: "query_us", Value: float64(viewDur.Microseconds())},
	}
	return rows, nil
}

func genderPct(g *graph.Graph, nodes []graph.NodeID, gender string) float64 {
	if len(nodes) == 0 {
		return 0
	}
	n := 0
	for _, v := range nodes {
		if got, ok := g.AttrString(v, "gender"); ok && got == gender {
			n++
		}
	}
	return 100 * float64(n) / float64(len(nodes))
}

// CasePandemic reproduces the Fig. 12 case study: on a 10k-citizen contact
// network (58% young / 42% senior), 10 high-degree seeds spread an
// infection; a budget of 100 vaccines is allocated across the age groups as
// [80,20] and as [20,80], and the resulting infection counts are compared.
// The summary patterns of the selected seeds describe the spreading contact
// structure (printed by the pandemic example).
func (s *Suite) CasePandemic() ([]Row, error) {
	g := gen.Pandemic(s.Seed+7, 10000)
	groups, err := gen.GroupsByAttr(g, "citizen", "agegroup", []string{"young", "senior"}, 0, 100)
	if err != nil {
		return nil, err
	}
	seeds := cascade.TopDegreeSeeds(g, 10)
	model := cascade.Model{P: 0.13, Trials: 20, Seed: s.Seed + 8}

	baselineRun := cascade.SimulateImmunization(g, groups, seeds, []int{0, 0}, model)
	youngHeavy := cascade.SimulateImmunization(g, groups, seeds, []int{80, 20}, model)
	seniorHeavy := cascade.SimulateImmunization(g, groups, seeds, []int{20, 80}, model)

	rows := []Row{
		{Exp: "case-pandemic", Dataset: "Pandemic", Algo: "no-vaccine", Metric: "infected", Value: baselineRun.Infected},
		{Exp: "case-pandemic", Dataset: "Pandemic", Algo: "alloc-80-20", Metric: "infected", Value: youngHeavy.Infected},
		{Exp: "case-pandemic", Dataset: "Pandemic", Algo: "alloc-20-80", Metric: "infected", Value: seniorHeavy.Infected},
		{Exp: "case-pandemic", Dataset: "Pandemic", Algo: "alloc-80-20", Metric: "vaccinated", Value: float64(youngHeavy.Vaccinated)},
		{Exp: "case-pandemic", Dataset: "Pandemic", Algo: "alloc-20-80", Metric: "vaccinated", Value: float64(seniorHeavy.Vaccinated)},
	}
	return rows, nil
}

// PandemicPatterns mines the contact-structure patterns of the seed
// spreaders (the P10/P11 flavor of Fig. 12) by summarizing the age groups
// around the most contagious citizens.
func (s *Suite) PandemicPatterns() (*core.Summary, error) {
	g := gen.Pandemic(s.Seed+7, 2000)
	groups, err := gen.GroupsByAttr(g, "citizen", "agegroup", []string{"young", "senior"}, 2, 8)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{R: 1, N: 10, Mining: miningCfg(s.Workers), Obs: s.Obs}
	util := submod.NewNeighborCoverage(g, submod.NeighborsBoth, "contact")
	return core.APXFGS(g, groups, util, cfg)
}

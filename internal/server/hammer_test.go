package server

import (
	"github.com/cwru-db/fgs/internal/leakcheck"

	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestHammerConcurrentMixedTraffic fires mixed read/write traffic from many
// goroutines at one server. Run under -race it checks the single-writer/
// many-reader locking: no data race, no 5xx, and the engine's counters
// stay coherent. Request outcomes (cache hits, rejections) are
// scheduling-dependent here — correctness, not determinism, is the claim;
// determinism is asserted by the sequential and e2e tests.
func TestHammerConcurrentMixedTraffic(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("hammer test skipped in -short")
	}
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256})

	const clients = 12
	const perClient = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				path, body := hammerRequest(c, i)
				resp, respBody := post(t, ts, path, body)
				if resp.StatusCode >= 500 {
					errs <- fmt.Errorf("%s %s: %d (%s)", path, body, resp.StatusCode, respBody)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, body := get(t, ts, "/v1/stats")
	wantStatus(t, resp, body, 200)
	if !strings.Contains(string(body), `"epoch"`) {
		t.Fatalf("stats body %q", body)
	}
	if s.Epoch() == 0 {
		t.Fatal("no write ever advanced the epoch")
	}
}

// hammerRequest derives a mixed request from the (client, iteration) pair:
// mostly reads, some real writes (insert/delete cycles on a dedicated edge
// per client), some failing no-op writes.
func hammerRequest(c, i int) (path, body string) {
	switch i % 6 {
	case 0:
		return "/v1/summarize", fmt.Sprintf(`{"n":%d}`, 4+i%3)
	case 1:
		return "/v1/view", `{"pattern":"n 0 user\nf 0"}`
	case 2:
		return "/v1/workload", ``
	case 3:
		// Insert/delete cycle on an edge no other client touches: client c
		// owns 12 -> (13+c)%24. Either order may fail (400) depending on
		// interleaving with this client's own history — never 5xx.
		if (i/6)%2 == 0 {
			return "/v1/update", fmt.Sprintf(`{"insert":[{"from":12,"to":%d,"label":"hammer%d"}]}`, (13+c)%24, c)
		}
		return "/v1/update", fmt.Sprintf(`{"delete":[{"from":12,"to":%d,"label":"hammer%d"}]}`, (13+c)%24, c)
	case 4:
		return "/v1/update", `{"insert":[{"from":100000,"to":100001,"label":"corev"}]}` // always a 400 no-op
	default:
		return "/v1/summarize-k", `{"k":2,"n":4}`
	}
}

// TestHammerWithDrain drains the server while traffic is in flight: already
// admitted requests complete, new ones get 503, and nothing races.
func TestHammerWithDrain(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("hammer test skipped in -short")
	}
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, _ := post(t, ts, "/v1/summarize", fmt.Sprintf(`{"n":%d}`, 4+(c+i)%3))
				if resp.StatusCode != 200 && resp.StatusCode != 503 {
					t.Errorf("during drain: status %d", resp.StatusCode)
				}
			}
		}(c)
	}
	s.StartDrain()
	wg.Wait()
	assertDrainingServer(t, ts)
}

func assertDrainingServer(t *testing.T, ts *httptest.Server) {
	t.Helper()
	resp, body := get(t, ts, "/healthz")
	wantStatus(t, resp, body, 503)
	resp, body = post(t, ts, "/v1/summarize", `{"n":4}`)
	wantStatus(t, resp, body, 503)
}

package fgs_test

// The benchmark harness: one testing.B benchmark per figure of the paper's
// evaluation section (Section VIII) plus the ablations DESIGN.md lists.
// Each benchmark regenerates the figure's full data series; the rows are
// printed once (first iteration) so `go test -bench` output doubles as the
// reproduction record consumed by EXPERIMENTS.md.
//
// Datasets are scale-1 (see internal/gen); absolute times therefore differ
// from the paper's 5M-node runs, but the series shapes are the comparison
// targets. Set -timeout generously when running all benches.

import (
	"flag"
	"sync"
	"testing"

	"github.com/cwru-db/fgs/internal/experiments"
)

var (
	benchScale = flag.Int("fgs.scale", 1, "dataset scale for figure benchmarks")
	// The figure benchmarks default to sequential execution so their times
	// stay comparable with the paper's single-threaded measurements; opt in
	// to the parallel mine→score pipeline with -fgs.workers=N (metric values
	// are identical, only wall times change).
	benchWorkers = flag.Int("fgs.workers", 0, "mining/scoring worker goroutines for figure benchmarks (0 = sequential)")
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

func benchSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		suite = experiments.New(*benchScale, 42)
		suite.Workers = *benchWorkers
	})
	return suite
}

// runFigure drives one figure's harness function under testing.B and prints
// the series on the first iteration.
func runFigure(b *testing.B, name string, fn func() ([]experiments.Row, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := fn()
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if i == 0 {
			b.Log(experiments.FormatRows(rows))
		}
	}
}

// Exp-1: effectiveness (Figs. 8(a)-8(f)).

func BenchmarkFig8aCoverageError(b *testing.B) { runFigure(b, "fig8a", benchSuite().Fig8a) }
func BenchmarkFig8bCompression(b *testing.B)   { runFigure(b, "fig8b", benchSuite().Fig8b) }
func BenchmarkFig8cVaryK(b *testing.B)         { runFigure(b, "fig8c", benchSuite().Fig8c) }
func BenchmarkFig8dVaryCard(b *testing.B)      { runFigure(b, "fig8d", benchSuite().Fig8d) }
func BenchmarkFig8eVaryN(b *testing.B)         { runFigure(b, "fig8e", benchSuite().Fig8e) }
func BenchmarkFig8fVaryLower(b *testing.B)     { runFigure(b, "fig8f", benchSuite().Fig8f) }

// Exp-2: efficiency (Figs. 9(a)-9(d)).

func BenchmarkFig9aEfficiency(b *testing.B) { runFigure(b, "fig9a", benchSuite().Fig9a) }
func BenchmarkFig9bVaryK(b *testing.B)      { runFigure(b, "fig9b", benchSuite().Fig9b) }
func BenchmarkFig9cVaryN(b *testing.B)      { runFigure(b, "fig9c", benchSuite().Fig9c) }
func BenchmarkFig9dVaryR(b *testing.B)      { runFigure(b, "fig9d", benchSuite().Fig9d) }

// Exp-3: online summarization (Figs. 10(a)-10(b)).

func BenchmarkFig10aOnlineRatio(b *testing.B) { runFigure(b, "fig10a", benchSuite().Fig10a) }
func BenchmarkFig10bOnlineTime(b *testing.B)  { runFigure(b, "fig10b", benchSuite().Fig10b) }

// Exp-4: case studies (Figs. 11 and 12).

func BenchmarkCaseTalent(b *testing.B)   { runFigure(b, "case-talent", benchSuite().CaseTalent) }
func BenchmarkCasePandemic(b *testing.B) { runFigure(b, "case-pandemic", benchSuite().CasePandemic) }

// Ablations (DESIGN.md section 5).

func BenchmarkAblationGainRule(b *testing.B) {
	runFigure(b, "ablation-gain", benchSuite().AblationGainRule)
}

func BenchmarkAblationSeedPatterns(b *testing.B) {
	runFigure(b, "ablation-seeds", benchSuite().AblationSeedPatterns)
}

func BenchmarkAblationLazyGreedy(b *testing.B) {
	runFigure(b, "ablation-lazy", benchSuite().AblationLazyGreedy)
}

package server

import (
	"bytes"
	"strings"
	"testing"
)

func TestDecodeStrict(t *testing.T) {
	var req SummarizeRequest
	if err := decodeStrict(nil, &req); err != nil {
		t.Fatalf("empty body: %v", err)
	}
	if err := decodeStrict([]byte("  \n"), &req); err != nil {
		t.Fatalf("whitespace body: %v", err)
	}
	if err := decodeStrict([]byte(`{"n":4}`), &req); err != nil || req.N != 4 {
		t.Fatalf("n=4: %v, req %+v", err, req)
	}
	if err := decodeStrict([]byte(`{"bogus":1}`), &req); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := decodeStrict([]byte(`{"n":4}{"n":5}`), &req); err == nil {
		t.Fatal("trailing value accepted")
	}
	if err := decodeStrict([]byte(`{"n":"four"}`), &req); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestCanonicalKeyCollapsesEquivalentRequests(t *testing.T) {
	// Normalization happens before hashing, so equal structs — however their
	// JSON arrived — produce equal keys.
	a, err := canonicalKey("summarize", &SummarizeRequest{R: 2, N: 4, Utility: "coverage"})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := canonicalKey("summarize", &SummarizeRequest{N: 4, R: 2, Utility: "coverage"})
	if a != b {
		t.Fatalf("equal requests, different keys: %q %q", a, b)
	}
	c, _ := canonicalKey("summarize", &SummarizeRequest{R: 2, N: 5, Utility: "coverage"})
	if a == c {
		t.Fatal("different requests share a key")
	}
	d, _ := canonicalKey("view", &SummarizeRequest{R: 2, N: 4, Utility: "coverage"})
	if a == d {
		t.Fatal("endpoints share a key space")
	}
	if !strings.HasPrefix(a, "summarize:") {
		t.Fatalf("key %q lacks the endpoint prefix", a)
	}
}

func TestEpochKeyScopes(t *testing.T) {
	if epochKey("k", 0) == epochKey("k", 1) {
		t.Fatal("epochs share keys")
	}
	if epochKey("a", 1) == epochKey("b", 1) {
		t.Fatal("requests share keys")
	}
}

func TestMarshalBodyCanonical(t *testing.T) {
	body, err := marshalBody(&ViewResponse{Epoch: 1, Count: 2, Nodes: []int64{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"epoch":1,"count":2,"nodes":[3,4]}` + "\n"
	if string(body) != want {
		t.Fatalf("body = %q, want %q", body, want)
	}
	if !bytes.HasSuffix(body, []byte("\n")) {
		t.Fatal("no trailing newline")
	}
}

package fgs_test

import (
	"bytes"
	"testing"

	fgs "github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/datasets"
)

func TestPublicQueryView(t *testing.T) {
	g, groups := buildTalentGraph(t)
	s, err := fgs.Summarize(g, groups, fgs.NewCardinality(), fgs.Config{R: 2, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := &fgs.Pattern{
		Focus: 0,
		Nodes: []fgs.PatternNode{{Label: "user", Literals: []fgs.Literal{{Key: "gender", Val: "f"}}}},
	}
	got := fgs.QueryView(g, s, q, 0)
	if len(got) != 2 {
		t.Fatalf("view query = %v, want the 2 covered females", got)
	}
}

func TestPublicSummaryJSON(t *testing.T) {
	g, groups := buildTalentGraph(t)
	s, err := fgs.Summarize(g, groups, fgs.NewCardinality(), fgs.Config{R: 2, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fgs.WriteSummaryJSON(&buf, s, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := fgs.ReadSummaryJSON(&buf, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	missing, spurious := loaded.Reconstruct(g)
	if missing.Len() != 0 || spurious.Len() != 0 {
		t.Fatal("loaded summary not lossless")
	}
}

func TestPublicDeltaMaintenance(t *testing.T) {
	g, groups := buildTalentGraph(t)
	m, initial := fgs.NewMaintainer(g, groups, fgs.NewCardinality(), fgs.Config{R: 2, N: 4})
	target := initial.Covered[0]
	in := g.In(target)
	if len(in) == 0 {
		t.Skip("no in-edges")
	}
	updated, err := m.ApplyDelta(fgs.Delta{
		Delete: []fgs.EdgeUpdate{{From: in[0].To, To: target, Label: g.EdgeLabelName(in[0].Label)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	missing, spurious := updated.Reconstruct(g)
	if missing.Len() != 0 || spurious.Len() != 0 {
		t.Fatal("deletion broke losslessness")
	}
}

func TestPublicFairnessPolicies(t *testing.T) {
	lki := datasets.LKI(3, 1)
	users := lki.NodesWithLabel("user")
	var males, females []fgs.NodeID
	for _, u := range users {
		if v, _ := lki.AttrString(u, "gender"); v == "male" {
			males = append(males, u)
		} else {
			females = append(females, u)
		}
	}
	raw := []fgs.Group{
		{Name: "male", Members: males},
		{Name: "female", Members: females},
	}

	eq, err := fgs.EqualOpportunity(raw, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if eq[0].Lower != 40 || eq[1].Upper != 60 {
		t.Fatalf("equal-opportunity bounds: %+v", eq)
	}

	prop, err := fgs.Proportional(raw, 100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if prop[0].Lower <= prop[1].Lower {
		t.Fatalf("proportional bounds should favor the majority: %+v vs %+v", prop[0], prop[1])
	}
	// Both must be usable end to end.
	groups, err := fgs.NewGroups(eq...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := fgs.Summarize(lki, groups, fgs.NewNeighborCoverage(lki, fgs.NeighborsIn, "corev"), fgs.Config{R: 2, N: 100})
	if err != nil {
		t.Fatal(err)
	}
	if fgs.CoverageError(groups, s.Covered) != 0 {
		t.Fatal("equal-opportunity summary violates its own bounds")
	}
}

func TestPublicAttributeDiversity(t *testing.T) {
	lki := datasets.LKI(4, 1)
	groups, err := datasets.GroupsByAttr(lki, "user", "gender", []string{"male", "female"}, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	util := fgs.NewAttributeDiversity(lki, "industry")
	s, err := fgs.Summarize(lki, groups, util, fgs.Config{R: 1, N: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Five industries exist; a 12-node diverse selection should span most.
	seen := map[string]bool{}
	for _, v := range s.Covered {
		if ind, ok := lki.AttrString(v, "industry"); ok {
			seen[ind] = true
		}
	}
	if len(seen) < 4 {
		t.Fatalf("diversity utility covered only %d industries", len(seen))
	}
}

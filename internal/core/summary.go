// Package core implements the paper's contribution: r-summaries and the
// algorithms that compute and maintain them.
//
//   - Summary is the two-part "pattern-correction" structure S = (P, C) of
//     Section II: a pattern set covering group nodes at a common focus plus
//     the edge corrections that make the r-hop neighborhood reconstruction
//     lossless.
//   - Verify implements the rverify procedure of Section III-B.
//   - APXFGS (apxfgs.go) is the (½, ln n)-approximation of Section IV.
//   - KAPXFGS (kapxfgs.go) is the k-pattern, (½, 1+1/(eγ)) variant of
//     Section V.
//   - Online (online.go) is the streaming (¼, ln n + θ) algorithm of
//     Section VI.
//   - Maintainer (incfgs.go) is the Inc-FGS incremental maintenance of
//     Section VII.
package core

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"time"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/obs"
	"github.com/cwru-db/fgs/internal/pattern"
	"github.com/cwru-db/fgs/internal/submod"
)

// Config is the user configuration C = {r, k, n} of Section III plus the
// mining knobs.
type Config struct {
	// R is the reconstruction horizon: the summary losslessly describes the
	// r-hop neighborhoods of the covered group nodes.
	R int
	// K caps |P|, the number of patterns. K = 0 means unbounded (the
	// APXFGS setting of Theorem 3); K > 0 selects the Section V variant.
	K int
	// N caps |P_V|, the number of covered group nodes.
	N int
	// Mining bounds the SumGen pattern search; its Radius is forced to R.
	Mining mining.Config
	// PerNodePatterns caps candidates mined per arriving node in the online
	// and incremental algorithms. Default 25.
	PerNodePatterns int
	// Workers is the single parallelism knob for the whole pipeline: it flows
	// into Mining.Workers (candidate scoring pool, matcher fan-out, E_v^r
	// cache warming) unless that is set explicitly. 0/1 = sequential; results
	// are identical at any setting.
	Workers int
	// Obs receives phase spans and runtime counters. Nil disables collection
	// beyond the Stats view; it flows into Mining.Obs unless that is set.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.R <= 0 {
		c.R = 2
	}
	if c.N <= 0 {
		c.N = 10
	}
	c.Mining.Radius = c.R
	if c.PerNodePatterns <= 0 {
		c.PerNodePatterns = 25
	}
	if c.Mining.Workers == 0 {
		c.Mining.Workers = c.Workers
	}
	if c.Mining.Obs == nil {
		c.Mining.Obs = c.Obs
	}
	return c
}

// PatternInfo is one selected pattern with its evaluation artifacts.
type PatternInfo struct {
	P *pattern.Pattern
	// Covered is P_V: the group nodes covered at the focus, sorted.
	Covered []graph.NodeID
	// CoveredEdges is P_E restricted to embeddings at covered group nodes.
	CoveredEdges graph.EdgeSet
	// CP is C_P = |E^r_{P_V} \ P_E|, the pattern's edge-coverage loss.
	CP int
}

// infoOf converts a mined candidate to the public PatternInfo, materializing
// its covered-edge bitset into the map representation at the API boundary.
// g may be nil for synthetic candidates (tests, benches) that carry no
// edges; such candidates get a nil (empty, read-only) edge set rather than
// paying a map allocation per selection.
func infoOf(g *graph.Graph, cand *mining.Candidate) PatternInfo {
	pi := PatternInfo{P: cand.P, Covered: cand.Covered, CP: cand.CP}
	if g != nil && cand.HasEdges() {
		// EdgeBits also materializes the bitset for candidates scored on a
		// partition, which carry P_E as sorted global IDs instead.
		pi.CoveredEdges = g.EdgeSetOf(cand.EdgeBits(g.EdgeIDBound()))
	}
	return pi
}

// Summary is an r-summary S = (P, C).
type Summary struct {
	R int
	// Patterns is P with per-pattern bookkeeping.
	Patterns []PatternInfo
	// Covered is P_V: all group nodes covered by the pattern set, sorted.
	Covered []graph.NodeID
	// Corrections is C = E^r_{P_V} \ P_E.
	Corrections graph.EdgeSet
	// CL is the accumulated edge-coverage loss C_l = Σ_P C_P.
	CL int
	// Utility is F(P_V) for the utility the summary was computed under.
	Utility float64
	// Uncovered lists selected nodes the greedy could not cover without
	// violating feasibility; empty in the common case.
	Uncovered []graph.NodeID
	// Stats records phase timings for the efficiency experiments.
	Stats Stats
}

// PhaseStat is the aggregated timing of one named pipeline phase.
type PhaseStat struct {
	Name string
	Time time.Duration
	// Count is the number of spans merged into this phase (1 for batch runs;
	// the per-window invocation count for streaming runs).
	Count int
}

// Stats carries per-phase timings and counters. It is a view derived from
// the run's span tree (see statsView), so Total can never drift from the
// phases actually run.
type Stats struct {
	// Phases lists the run's phases in first-execution order.
	Phases []PhaseStat
	// Candidates is N, the number of patterns generated and verified.
	Candidates int
	// Windows counts stream windows processed (online/incremental runs only),
	// so per-window averages are computable from exported metrics.
	Windows int
}

// Phase returns the aggregated duration of the named phase (0 if absent).
func (s Stats) Phase(name string) time.Duration {
	for _, p := range s.Phases {
		if p.Name == name {
			return p.Time
		}
	}
	return 0
}

// SelectTime returns the selection-phase duration.
func (s Stats) SelectTime() time.Duration { return s.Phase(PhaseSelect) }

// MineTime returns the mining-phase duration.
func (s Stats) MineTime() time.Duration { return s.Phase(PhaseMine) }

// SummarizeTime returns the summarization-phase duration.
func (s Stats) SummarizeTime() time.Duration { return s.Phase(PhaseSummarize) }

// Total returns the end-to-end time: the sum over all recorded phases.
func (s Stats) Total() time.Duration {
	var t time.Duration
	for _, p := range s.Phases {
		t += p.Time
	}
	return t
}

// NumPatterns returns |P|.
func (s *Summary) NumPatterns() int { return len(s.Patterns) }

// Size returns the description length of the summary: pattern sizes, the
// anchor list, and the corrections. This is the numerator of the compression
// ratio reported in the experiments.
func (s *Summary) Size() int {
	size := s.Corrections.Len() + len(s.Covered)
	for _, pi := range s.Patterns {
		size += pi.P.Size()
	}
	return size
}

// EdgeCoverageRatio reports the fraction of E^r_{P_V} the patterns describe
// without corrections: 1 − |C| / |E^r_{P_V}|. It is the empirical analog of
// the quantity behind Theorem 5's γ (γ = |E^r| / |P*_E ∩ E^r| − 1): a high
// ratio means the pattern set itself reconstructs most of the neighborhoods
// and the (1 + 1/(e·γ)) approximation on |C| is tight.
func (s *Summary) EdgeCoverageRatio(g *graph.Graph) float64 {
	total := g.RHopEdgesOf(s.Covered, s.R).Len()
	if total == 0 {
		return 1
	}
	return 1 - float64(s.Corrections.Len())/float64(total)
}

// DescribedEdges returns E^r_{P_V}: the edge set the summary losslessly
// describes, reconstructed as P_E ∪ C.
func (s *Summary) DescribedEdges() graph.EdgeSet {
	out := s.Corrections.Clone()
	for _, pi := range s.Patterns {
		out.AddAll(pi.CoveredEdges)
	}
	return out
}

// Reconstruct checks losslessness directly against the graph: P_E ∪ C must
// contain every edge of E^r_{P_V} (missing is the shortfall), and must not
// fabricate edges absent from the graph (spurious). P_E may legitimately
// include real edges beyond E^r_{P_V} when a pattern also matches elsewhere;
// those are not errors. Both returned sets are empty for a correct summary.
func (s *Summary) Reconstruct(g *graph.Graph) (missing, spurious graph.EdgeSet) {
	want := g.RHopEdgesOf(s.Covered, s.R)
	have := s.DescribedEdges()
	missing = want.Minus(have)
	spurious = graph.NewEdgeSet(0)
	for e := range have {
		if !g.HasEdge(e.From, e.To, e.Label) {
			spurious.Add(e)
		}
	}
	return missing, spurious
}

// String renders a short human-readable account of the summary.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d-summary: %d patterns, %d covered nodes, |C|=%d, C_l=%d, F=%.1f\n",
		s.R, len(s.Patterns), len(s.Covered), s.Corrections.Len(), s.CL, s.Utility)
	for i, pi := range s.Patterns {
		fmt.Fprintf(&b, "  P%d covers %d nodes, C_P=%d: %s\n", i+1, len(pi.Covered), pi.CP, pi.P)
	}
	return b.String()
}

// sortNodes sorts a node slice in place and returns it.
func sortNodes(ids []graph.NodeID) []graph.NodeID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// erSource abstracts where summary assembly reads r-hop neighborhoods
// from: the flat *mining.ErCache on the global path, or *mining.Regions
// when the run was served from focus-region shards. Both return E_X^r in
// the parent graph's EdgeID space, so the assembled summary is identical
// regardless of the source.
type erSource interface {
	Graph() *graph.Graph
	UnionOf([]graph.NodeID) *graph.EdgeBits
}

// buildSummary assembles the final structure from chosen patterns.
func buildSummary(cfg Config, chosen []PatternInfo, er erSource, util submod.Utility, uncovered []graph.NodeID, stats Stats) *Summary {
	coveredSet := graph.NewNodeSet(0)
	coveredEdges := graph.NewEdgeSet(0)
	cl := 0
	for _, pi := range chosen {
		for _, v := range pi.Covered {
			coveredSet.Add(v)
		}
		coveredEdges.AddAll(pi.CoveredEdges)
		cl += pi.CP
	}
	covered := make([]graph.NodeID, 0, coveredSet.Len())
	for v := range coveredSet {
		covered = append(covered, v)
	}
	// Inline sort (not sortNodes) so fgslint's maporder can prove the
	// map-iteration order never reaches the summary.
	slices.Sort(covered)
	// C = E^r_{P_V} \ P_E on the dense bitsets (one word-sweep), materialized
	// into the public map representation at the end. P_E entries for edges
	// since deleted drop out of the conversion, which cannot change the
	// difference: a deleted edge is never in the freshly computed E^r_{P_V}.
	g := er.Graph()
	corrections := g.EdgeSetOf(er.UnionOf(covered).Minus(g.EdgeBitsOf(coveredEdges)))
	return &Summary{
		R:           cfg.R,
		Patterns:    chosen,
		Covered:     covered,
		Corrections: corrections,
		CL:          cl,
		// Evaluate on a clone: the caller's utility may hold live streaming
		// state that Eval's Reset would corrupt.
		Utility:   submod.Eval(util.Clone(), covered),
		Uncovered: sortNodes(uncovered),
		Stats:     stats,
	}
}

package server

import (
	"errors"
	"sync/atomic"

	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/obs"
)

// Focus-region partitioning on the serving path (DESIGN.md §14). Each epoch
// view carries a partitionSlot: the focus-region shard set for exactly that
// view's graph replica, built at most once per epoch and shared by every
// reader pinned to the view. Readers therefore pin (view, partition)
// together — the partition can never mix epochs with the graph it is used
// against, and it retires with its view.
//
// Builds are lazy with a singleflight guard: the first summarize against a
// fresh epoch (or the async builder the write path kicks off at publish)
// constructs the regions; concurrent requests that lose the build race fall
// back to the unpartitioned path for that one request, which is
// byte-identical by the mining layer's determinism contract — the partition
// is a throughput optimization, never a correctness dependency.

// partitionSeed fixes the partitioner's center-selection stream. A constant
// (rather than boot entropy) keeps shard assignment reproducible across
// restarts, so cross-process determinism tests can compare traces.
const partitionSeed uint64 = 0x66677364 // "fgsd"

// errPartitionBusy reports a beginBuild that lost the singleflight race.
var errPartitionBusy = errors.New("server: partition build already in flight")

// partitionSlot is one epoch view's partition cache. built is the published
// regions (nil until the first build completes); busy is the build
// singleflight. Both are atomics so readers never take a lock: the hot path
// is a single pointer load once the partition exists.
type partitionSlot struct {
	built atomic.Pointer[mining.Regions]
	busy  atomic.Bool
}

// beginBuild claims the slot's build singleflight. On success the returned
// release must be called exactly once when the build attempt finishes
// (whether or not it stored a result); on errPartitionBusy another builder
// owns the slot and the caller must not build.
func (ps *partitionSlot) beginBuild() (release func(), err error) {
	if !ps.busy.CompareAndSwap(false, true) {
		return nil, errPartitionBusy
	}
	return func() { ps.busy.Store(false) }, nil
}

// buildPartitionFor constructs and installs v's focus-region partition.
// Safe to call concurrently — losers of the build singleflight return and
// leave the winner's result to land. The caller must hold a pin on v so the
// replica cannot be recycled mid-build.
func (s *Server) buildPartitionFor(v *epochView) {
	release, err := v.part.beginBuild()
	if err != nil {
		return
	}
	defer release()
	if v.part.built.Load() != nil {
		return
	}
	v.part.built.Store(mining.BuildRegions(v.g, s.groups.All(), mining.RegionConfig{
		Shards: s.cfg.Shards,
		R:      s.cfg.R,
		Seed:   partitionSeed,
	}))
}

// regionsFor resolves the partition for a pinned read context, timing the
// resolution as the request's partition stage. It returns nil — meaning the
// run proceeds unpartitioned — when sharding is off, in locked mode (the
// live graph mutates under readers, so slices cannot be cached), when the
// request's radius differs from the partition radius, or when the build
// singleflight is held by someone else.
func (s *Server) regionsFor(rt *obs.ReqTrace, v *epochView, r int) *mining.Regions {
	if s.cfg.Shards < 2 || v == nil || r != s.cfg.R {
		return nil
	}
	sp := rt.Start(obs.StagePartition)
	defer sp.End()
	if built := v.part.built.Load(); built != nil {
		return built
	}
	s.buildPartitionFor(v)
	return v.part.built.Load()
}

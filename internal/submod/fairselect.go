package submod

import (
	"container/heap"
	"fmt"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/obs"
)

// ErrInfeasible is returned when no selection can satisfy the group coverage
// constraints (e.g. Σ l_i > n, or a group has fewer members than its lower
// bound reachable under the budget).
var ErrInfeasible = fmt.Errorf("submod: coverage constraints are infeasible")

// FairSelect implements procedure FairSelect of Fig. 3: greedy fair
// submodular maximization under group cardinality constraints, a
// ½-approximation per [17]. It selects up to n nodes from ∪V maximizing F
// subject to every group count landing in [l_i, u_i].
//
// The utility's state is consumed: on return, util holds the selected set.
// The returned slice is in selection order.
func FairSelect(groups *Groups, util Utility, n int) ([]graph.NodeID, error) {
	return FairSelectObs(groups, util, n, nil)
}

// FairSelectObs is FairSelect with iteration counters — heap pops, lazy-gain
// refreshes, per-group selection progress — reported to reg at the end (reg
// may be nil; the counters then cost three local increments).
func FairSelectObs(groups *Groups, util Utility, n int, reg *obs.Registry) ([]graph.NodeID, error) {
	if groups.SumLower() > n {
		return nil, fmt.Errorf("%w: sum of lower bounds %d exceeds n=%d", ErrInfeasible, groups.SumLower(), n)
	}
	util.Reset()

	var pops, refreshes int64
	counts := make([]int, groups.Len())
	if reg != nil {
		defer func() {
			reg.Add("fgs_fairselect_heap_pops_total", "Lazy-greedy heap pops in FairSelect.", nil, pops)
			reg.Add("fgs_fairselect_refreshes_total", "Stale-gain recomputations pushed back in FairSelect.", nil, refreshes)
			for gi := 0; gi < groups.Len(); gi++ {
				reg.Add("fgs_fairselect_selected_total", "Nodes selected per group by FairSelect.",
					[]obs.Label{{Key: "group", Val: groups.At(gi).Name}}, int64(counts[gi]))
			}
		}()
	}

	// Lazy greedy: a max-heap of candidates keyed by (stale) marginal gain.
	// Submodularity guarantees gains only shrink, so a popped candidate whose
	// recomputed gain still beats the next heap top is the true argmax.
	h := &gainHeap{}
	for gi := 0; gi < groups.Len(); gi++ {
		for _, v := range groups.At(gi).Members {
			heap.Push(h, gainItem{v: v, group: gi, gain: util.Marginal(v)})
		}
	}

	var selected []graph.NodeID
	for len(selected) < n && h.Len() > 0 {
		top := heap.Pop(h).(gainItem)
		pops++
		if !groups.ExtendableM(counts, top.group, n) {
			// Extendability is monotone decreasing as counts grow, so the
			// candidate can be discarded permanently.
			continue
		}
		fresh := util.Marginal(top.v)
		if h.Len() > 0 && fresh < (*h)[0].gain {
			top.gain = fresh
			heap.Push(h, top)
			refreshes++
			continue
		}
		util.Add(top.v)
		counts[top.group]++
		selected = append(selected, top.v)
	}

	if !lowerBoundsMet(groups, counts) {
		return nil, fmt.Errorf("%w: greedy could not meet all lower bounds (selected %d of %d)", ErrInfeasible, len(selected), n)
	}
	return selected, nil
}

// FairSelectPlain is the textbook (non-lazy) greedy; selections are identical
// to FairSelect up to ties. It exists for the lazy-greedy ablation bench.
func FairSelectPlain(groups *Groups, util Utility, n int) ([]graph.NodeID, error) {
	if groups.SumLower() > n {
		return nil, fmt.Errorf("%w: sum of lower bounds %d exceeds n=%d", ErrInfeasible, groups.SumLower(), n)
	}
	util.Reset()
	counts := make([]int, groups.Len())
	chosen := graph.NewNodeSet(n)
	var selected []graph.NodeID
	for len(selected) < n {
		best := graph.NodeID(-1)
		bestGroup := -1
		bestGain := -1.0
		for gi := 0; gi < groups.Len(); gi++ {
			if !groups.ExtendableM(counts, gi, n) {
				continue
			}
			for _, v := range groups.At(gi).Members {
				if chosen.Has(v) {
					continue
				}
				if g := util.Marginal(v); g > bestGain {
					bestGain = g
					best = v
					bestGroup = gi
				}
			}
		}
		if bestGroup < 0 {
			break
		}
		util.Add(best)
		chosen.Add(best)
		counts[bestGroup]++
		selected = append(selected, best)
	}
	if !lowerBoundsMet(groups, counts) {
		return nil, ErrInfeasible
	}
	return selected, nil
}

func lowerBoundsMet(groups *Groups, counts []int) bool {
	for i := 0; i < groups.Len(); i++ {
		if counts[i] < groups.At(i).Lower {
			return false
		}
	}
	return true
}

// gainItem is one heap entry: a candidate node with its stale marginal gain.
type gainItem struct {
	v     graph.NodeID
	group int
	gain  float64
}

type gainHeap []gainItem

func (h gainHeap) Len() int { return len(h) }

// Less orders by gain descending with NodeID as a deterministic tie-break,
// so selections are reproducible across runs and platforms.
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].v < h[j].v
}
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Package datasets exposes the seeded synthetic evaluation graphs of the
// reproduction — stand-ins for the paper's DBP (DBpedia movies), LKI
// (social network with skewed gender), Cite (citation graph), and the
// pandemic contact network — together with helpers that induce node groups
// from attribute values. See DESIGN.md for what each generator preserves of
// its real-world counterpart.
package datasets

import (
	fgs "github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/internal/gen"
)

// DBP generates the movie knowledge graph (movies, directors, actors; genre
// frequencies skewed as in DBpedia). Scale 1 ≈ 1.4k nodes.
func DBP(seed int64, scale int) *fgs.Graph { return gen.DBP(seed, scale) }

// LKI generates the social network (users with a 77/23 gender skew, orgs,
// co-review and employment edges, heavy-tailed degrees). Scale 1 = 2k users.
func LKI(seed int64, scale int) *fgs.Graph { return gen.LKI(seed, scale) }

// Cite generates the citation graph (papers with skewed topics, authors,
// preferential citations). Scale 1 ≈ 2.1k nodes.
func Cite(seed int64, scale int) *fgs.Graph { return gen.Cite(seed, scale) }

// Pandemic generates the contact network of the paper's immunization case
// study: n citizens, 58% under age 50, community-structured contacts.
func Pandemic(seed int64, n int) *fgs.Graph { return gen.Pandemic(seed, n) }

// LKISized generates the LKI social network with approximately n nodes —
// the scale-tier variant: the city attribute's cardinality grows with n, so
// city-induced groups stay roughly constant-sized at any scale.
func LKISized(seed int64, n int) *fgs.Graph { return gen.LKISized(seed, n) }

// DBPSized generates the DBP movie graph with approximately n nodes; the
// movies carry a scaled "franchise" attribute whose cohorts stay roughly
// constant-sized at any scale.
func DBPSized(seed int64, n int) *fgs.Graph { return gen.DBPSized(seed, n) }

// GroupsByAttr induces one group per attribute value over nodes with the
// given label, each with the coverage constraint [lower, upper].
func GroupsByAttr(g *fgs.Graph, label, key string, values []string, lower, upper int) (*fgs.Groups, error) {
	return gen.GroupsByAttr(g, label, key, values, lower, upper)
}

// GroupsByAttrPairs induces one group per combination of two attributes'
// values (e.g. gender x degree).
func GroupsByAttrPairs(g *fgs.Graph, label, key1 string, vals1 []string, key2 string, vals2 []string, lower, upper int) (*fgs.Groups, error) {
	return gen.GroupsByAttrPairs(g, label, key1, vals1, key2, vals2, lower, upper)
}

package mining

import (
	"sync"
	"testing"

	"github.com/cwru-db/fgs/internal/gen"
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/pattern"
)

// requireSameCandidates asserts two SumGen outputs are byte-identical:
// same length, same order, and per-candidate equality of pattern, coverage,
// covered edges, C_P, and fallback flag.
func requireSameCandidates(t *testing.T, want, got []*Candidate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("candidate counts differ: sequential %d, parallel %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if pattern.CanonicalCode(w.P) != pattern.CanonicalCode(g.P) {
			t.Fatalf("candidate %d pattern differs: %s vs %s", i, w.P, g.P)
		}
		if w.Fallback != g.Fallback {
			t.Fatalf("candidate %d fallback flag differs", i)
		}
		if w.CP != g.CP {
			t.Fatalf("candidate %d (%s): CP %d vs %d", i, w.P, w.CP, g.CP)
		}
		if len(w.Covered) != len(g.Covered) {
			t.Fatalf("candidate %d (%s): |Covered| %d vs %d", i, w.P, len(w.Covered), len(g.Covered))
		}
		for j := range w.Covered {
			if w.Covered[j] != g.Covered[j] {
				t.Fatalf("candidate %d (%s): Covered[%d] %d vs %d", i, w.P, j, w.Covered[j], g.Covered[j])
			}
		}
		if w.CoveredEdges.Count() != g.CoveredEdges.Count() {
			t.Fatalf("candidate %d (%s): |CoveredEdges| %d vs %d", i, w.P, w.CoveredEdges.Count(), g.CoveredEdges.Count())
		}
		w.CoveredEdges.Iterate(func(e graph.EdgeID) {
			if !g.CoveredEdges.Has(e) {
				t.Fatalf("candidate %d (%s): parallel run missing covered edge %v", i, w.P, e)
			}
		})
	}
}

// labelNodes returns up to n nodes with the given label, in ID order.
func labelNodes(g *graph.Graph, label string, n int) []graph.NodeID {
	nodes := g.NodesWithLabel(label)
	if len(nodes) > n {
		nodes = nodes[:n]
	}
	return nodes
}

// TestSumGenParallelMatchesSequential is the core determinism guarantee of
// the scoring pipeline: for every worker count, SumGen output must be
// byte-identical to the sequential run, across the three figure datasets.
func TestSumGenParallelMatchesSequential(t *testing.T) {
	datasets := []struct {
		name  string
		g     *graph.Graph
		label string
	}{
		{"LKI", gen.LKI(7, 1), "user"},
		{"DBP", gen.DBP(8, 1), "movie"},
		{"Cite", gen.Cite(9, 1), "paper"},
	}
	for _, ds := range datasets {
		t.Run(ds.name, func(t *testing.T) {
			anchors := labelNodes(ds.g, ds.label, 40)
			if len(anchors) == 0 {
				t.Fatalf("no %s nodes in %s", ds.label, ds.name)
			}
			cfg := Config{Radius: 2, MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 120}
			seq := SumGen(ds.g, anchors, anchors, cfg, nil)
			for _, w := range []int{2, 3, 8} {
				pcfg := cfg
				pcfg.Workers = w
				par := SumGen(ds.g, anchors, anchors, pcfg, nil)
				requireSameCandidates(t, seq, par)
			}
		})
	}
}

// TestSumGenParallelBudgetAndNilScores drives the two paths where the
// pipeline's speculation is visible internally: a tight MaxPatterns budget
// (the producer overruns it and the committer must discard the overshoot)
// and a universe disjoint from the anchors (score returns nil candidates,
// which must not consume budget in either implementation).
func TestSumGenParallelBudgetAndNilScores(t *testing.T) {
	g := gen.LKI(13, 1)
	users := g.NodesWithLabel("user")
	if len(users) < 60 {
		t.Fatalf("LKI too small: %d users", len(users))
	}
	cases := []struct {
		name     string
		anchors  []graph.NodeID
		universe []graph.NodeID
		cfg      Config
	}{
		{
			name:     "tight-budget",
			anchors:  users[:40],
			universe: users[:40],
			cfg:      Config{Radius: 2, MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 7},
		},
		{
			name:     "disjoint-universe",
			anchors:  users[:20],
			universe: users[20:60],
			cfg:      Config{Radius: 2, MaxNodes: 3, MaxLiterals: 2, MaxPatterns: 40},
		},
		{
			name:     "anchors-only-scoring",
			anchors:  users[:30],
			universe: users[:50],
			cfg:      Config{Radius: 2, MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 60, ScoreAnchorsOnly: true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := SumGen(g, tc.anchors, tc.universe, tc.cfg, nil)
			for _, w := range []int{2, 8} {
				pcfg := tc.cfg
				pcfg.Workers = w
				par := SumGen(g, tc.anchors, tc.universe, pcfg, nil)
				requireSameCandidates(t, seq, par)
			}
		})
	}
}

// TestFrequentParallelMatchesSequential checks the frequent miner inherits
// the same guarantee through the shared engine.
func TestFrequentParallelMatchesSequential(t *testing.T) {
	g := gen.LKI(17, 1)
	universe := labelNodes(g, "user", 80)
	cfg := Config{Radius: 2, MaxNodes: 3, MaxLiterals: 1, MaxPatterns: 60}
	seq := Frequent(g, universe, cfg, 20, 2)
	pcfg := cfg
	pcfg.Workers = 4
	par := Frequent(g, universe, pcfg, 20, 2)
	if len(seq) != len(par) {
		t.Fatalf("frequent counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if pattern.CanonicalCode(seq[i].P) != pattern.CanonicalCode(par[i].P) {
			t.Fatalf("frequent %d pattern differs: %s vs %s", i, seq[i].P, par[i].P)
		}
		if seq[i].Support != par[i].Support {
			t.Fatalf("frequent %d support differs: %d vs %d", i, seq[i].Support, par[i].Support)
		}
	}
}

// TestErCacheWarm checks parallel pre-warming produces exactly the sets a
// cold Get computes.
func TestErCacheWarm(t *testing.T) {
	g := gen.LKI(19, 1)
	nodes := labelNodes(g, "user", 50)
	// Duplicates must be harmless.
	nodes = append(nodes, nodes[:5]...)
	er := NewErCache(g, 2)
	er.Warm(nodes, 8)
	for _, v := range nodes {
		want := g.RHopEdgeBits(v, 2)
		got := er.Get(v)
		if got.Count() != want.Count() {
			t.Fatalf("node %d: warmed E_v^r has %d edges, direct %d", v, got.Count(), want.Count())
		}
		want.Iterate(func(e graph.EdgeID) {
			if !got.Has(e) {
				t.Fatalf("node %d: warmed E_v^r missing edge %d", v, e)
			}
		})
	}
}

// TestErCacheConcurrent hammers one cache from many goroutines (Get across
// overlapping node sets plus Invalidate) — meaningful chiefly under -race.
func TestErCacheConcurrent(t *testing.T) {
	g := gen.LKI(23, 1)
	nodes := labelNodes(g, "user", 64)
	er := NewErCache(g, 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := range nodes {
				v := nodes[(i+off)%len(nodes)]
				if es := er.Get(v); es.Count() != g.RHopEdges(v, 2).Len() {
					// t.Errorf is goroutine-safe.
					t.Errorf("node %d: concurrent Get returned wrong size", v)
					return
				}
			}
		}(w * 7)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			er.Invalidate(nodes[:8])
		}
	}()
	wg.Wait()
}

// TestSumGenParallelUsesSuppliedCache checks the parallel run populates the
// caller's cache just like the sequential run (buildSummary relies on it).
func TestSumGenParallelUsesSuppliedCache(t *testing.T) {
	g := gen.LKI(29, 1)
	anchors := labelNodes(g, "user", 30)
	er := NewErCache(g, 2)
	cfg := Config{Radius: 2, MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 50, Workers: 4}
	cands := SumGen(g, anchors, anchors, cfg, er)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		union := er.UnionOf(c.Covered)
		if want := union.AndNotCount(c.CoveredEdges); c.CP != want {
			t.Fatalf("pattern %s: CP=%d, recomputed %d", c.P, c.CP, want)
		}
	}
}

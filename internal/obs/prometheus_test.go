package obs

import (
	"strings"
	"testing"
)

// TestPrometheusLabelEscaping pins the exposition-format escaping contract
// for label values: backslash, double quote, and line feed are escaped —
// and nothing else. (Go's %q would also escape tabs and non-ASCII into
// sequences a Prometheus parser reads literally.)
func TestPrometheusLabelEscaping(t *testing.T) {
	cases := []struct {
		val  string
		want string
	}{
		{`plain`, `m{k="plain"} 1`},
		{`back\slash`, `m{k="back\\slash"} 1`},
		{`qu"ote`, `m{k="qu\"ote"} 1`},
		{"new\nline", `m{k="new\nline"} 1`},
		{"tab\tand é stay literal", "m{k=\"tab\tand é stay literal\"} 1"},
	}
	for _, tc := range cases {
		var b strings.Builder
		err := WritePrometheus(&b, []Metric{{
			Name: "m", Kind: KindCounter,
			Labels: []Label{{Key: "k", Val: tc.val}},
			Value:  1,
		}})
		if err != nil {
			t.Fatal(err)
		}
		out := b.String()
		if !strings.Contains(out, tc.want) {
			t.Errorf("label %q: export %q missing %q", tc.val, out, tc.want)
		}
	}
}

func TestPrometheusHelpEscaping(t *testing.T) {
	var b strings.Builder
	err := WritePrometheus(&b, []Metric{{
		Name: "m", Help: "line\nbreak and back\\slash, \"quotes\" stay", Kind: KindCounter, Value: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := `# HELP m line\nbreak and back\\slash, "quotes" stay`
	if !strings.Contains(b.String(), want+"\n") {
		t.Fatalf("export %q missing help line %q", b.String(), want)
	}
}

// TestPrometheusExpositionConformance walks every line of a mixed export and
// checks the structural grammar: HELP/TYPE comments, exactly one space
// before the value, histograms expanding to _bucket/_sum/_count with an
// le label, and no unescaped newlines smuggled into the body.
func TestPrometheusExpositionConformance(t *testing.T) {
	hist := HistValue{Count: 2, Sum: 3, Buckets: make([]int64, HistNumBuckets+1)}
	for i := range hist.Buckets {
		hist.Buckets[i] = 2
	}
	var b strings.Builder
	err := WritePrometheus(&b, []Metric{
		{Name: "fgs_a_total", Help: "a", Kind: KindCounter, Value: 1},
		{Name: "fgs_b", Help: "b", Kind: KindGauge, Labels: []Label{{Key: "group", Val: "fe\nmale"}}, Value: 2.5},
		{Name: "fgs_c_us", Help: "c", Kind: KindHistogram, Labels: []Label{{Key: "stage", Val: "pin"}}, Hist: &hist},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("export must end with a newline")
	}
	sawBucket, sawSum, sawCount := false, false, false
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in export")
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		i := strings.LastIndex(line, " ")
		if i < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name := line[:i]
		switch {
		case strings.HasPrefix(name, "fgs_c_us_bucket"):
			sawBucket = true
			if !strings.Contains(name, `le="`) {
				t.Fatalf("bucket line without le label: %q", line)
			}
		case strings.HasPrefix(name, "fgs_c_us_sum"):
			sawSum = true
		case strings.HasPrefix(name, "fgs_c_us_count"):
			sawCount = true
		}
	}
	if !sawBucket || !sawSum || !sawCount {
		t.Fatalf("histogram expansion incomplete (bucket %v sum %v count %v):\n%s", sawBucket, sawSum, sawCount, out)
	}
	if got := strings.Count(out, "fgs_c_us_bucket"); got != HistNumBuckets+1 {
		t.Fatalf("bucket lines = %d, want %d", got, HistNumBuckets+1)
	}
}

// TestPrometheusExemplars pins the OpenMetrics exemplar suffix on histogram
// bucket lines: `value # {trace_id="..."} exemplar-value`.
func TestPrometheusExemplars(t *testing.T) {
	hist := HistValue{Count: 1, Sum: 100, Buckets: make([]int64, HistNumBuckets+1)}
	b := HistBucketOf(100)
	for i := b; i < len(hist.Buckets); i++ {
		hist.Buckets[i] = 1
	}
	ex := make([]*Exemplar, HistNumBuckets+1)
	ex[b] = &Exemplar{Labels: []Label{{Key: "trace_id", Val: "deadbeef"}}, Value: 100}

	var sb strings.Builder
	err := WritePrometheus(&sb, []Metric{{
		Name: "fgs_req_stage_us", Kind: KindHistogram,
		Labels: []Label{{Key: "stage", Val: "compute"}},
		Hist:   &hist, Exemplars: ex,
	}})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `fgs_req_stage_us_bucket{stage="compute",le="128"} 1 # {trace_id="deadbeef"} 100`
	if !strings.Contains(out, want+"\n") {
		t.Fatalf("export missing exemplar line %q:\n%s", want, out)
	}
	if got := strings.Count(out, "# {"); got != 1 {
		t.Fatalf("exemplar suffix count = %d, want 1 (only the hit bucket)", got)
	}
}

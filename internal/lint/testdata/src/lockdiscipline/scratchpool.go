// Scratch-pool shapes from internal/graph/bfs.go and internal/pattern's
// matcher: a sync.Pool of epoch-stamped scratch buffers. The correct idiom —
// pool owned by a long-lived struct, pointer receivers, Get/Put of pointer
// elements — must produce no diagnostics; copying the pool owner must still
// be flagged.
package lockdiscipline

import "sync"

type scratch struct {
	stamp []uint32
	epoch uint32
}

type Engine struct {
	nodes int
	pool  sync.Pool
}

func (e *Engine) acquire() *scratch { // ok: pointer receiver, pooled pointers
	s, _ := e.pool.Get().(*scratch)
	if s == nil {
		s = &scratch{}
	}
	if len(s.stamp) < e.nodes {
		s.stamp = make([]uint32, e.nodes)
	}
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
	return s
}

func (e *Engine) release(s *scratch) { // ok: scratch carries no lock
	e.pool.Put(s)
}

func (e *Engine) visited(s *scratch, v int) bool {
	if s.stamp[v] == s.epoch {
		return true
	}
	s.stamp[v] = s.epoch
	return false
}

func copiesEngine(e *Engine) int {
	local := *e // want `assignment copies lock-bearing`
	return local.nodes
}

func enginesByValue(e Engine) {} // want `parameter passes lock-bearing`

type guardedCache struct {
	mu    sync.RWMutex
	cache map[int]*scratch
}

func (c *guardedCache) lookup(k int) *scratch { // ok: RLock paired via defer
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.cache[k]
}

func (c *guardedCache) install(k int, s *scratch) { // ok: Lock paired
	c.mu.Lock()
	if c.cache == nil {
		c.cache = make(map[int]*scratch)
	}
	c.cache[k] = s
	c.mu.Unlock()
}

func (c *guardedCache) leakyLookup(k int) *scratch {
	c.mu.RLock() // want `c\.mu\.RLock\(\) without a matching`
	return c.cache[k]
}

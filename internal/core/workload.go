package core

import (
	"fmt"
	"io"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/pattern"
)

// The problem statement's application (2): summary patterns "can be directly
// suggested as meaningful graph queries, to guide query and graph generation
// with cardinality constraints for benchmarking" (citing gMark [5]). The
// workload generator evaluates each summary pattern as a standalone query
// and annotates it with the cardinalities a benchmark needs.

// WorkloadEntry is one summary pattern annotated as a benchmark query.
type WorkloadEntry struct {
	P *pattern.Pattern
	// Cardinality is |P(u_o, G)|: distinct focus matches in the whole graph.
	Cardinality int
	// CoveredMatches is how many of the summary's covered nodes match — the
	// query's yield when answered over the summary as a view.
	CoveredMatches int
	// Selectivity is Cardinality over the number of nodes carrying the
	// focus label (the candidate pool a query optimizer would scan).
	Selectivity float64
}

// Workload evaluates every pattern of the summary as a graph query.
func Workload(g *graph.Graph, s *Summary, embedCap int) []WorkloadEntry {
	m := pattern.NewMatcher(g, embedCap)
	entries := make([]WorkloadEntry, 0, len(s.Patterns))
	for _, pi := range s.Patterns {
		matches := m.Matches(pi.P)
		pool := len(g.NodesWithLabel(pi.P.Nodes[pi.P.Focus].Label))
		sel := 0.0
		if pool > 0 {
			sel = float64(len(matches)) / float64(pool)
		}
		entries = append(entries, WorkloadEntry{
			P:              pi.P,
			Cardinality:    len(matches),
			CoveredMatches: len(m.CoverAmong(pi.P, s.Covered)),
			Selectivity:    sel,
		})
	}
	return entries
}

// WriteWorkload emits the workload as a sequence of parseable pattern
// blocks, each preceded by its cardinality annotations — the exchange format
// for feeding the queries to a benchmark driver.
func WriteWorkload(w io.Writer, entries []WorkloadEntry) error {
	for i, e := range entries {
		if _, err := fmt.Fprintf(w, "# query %d: cardinality=%d covered_matches=%d selectivity=%.4f\n",
			i+1, e.Cardinality, e.CoveredMatches, e.Selectivity); err != nil {
			return err
		}
		if err := pattern.Format(w, e.P); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

package experiments

import (
	"testing"
	"time"
)

// TestScaleFeasibility mirrors the paper's feasibility claim ("up to 400
// seconds on graphs with 5M nodes"): runtime must grow roughly linearly in
// the dataset scale, not quadratically. Skipped in -short mode.
func TestScaleFeasibility(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling run in -short mode")
	}
	var times []time.Duration
	for _, scale := range []int{1, 4} {
		s := New(scale, 42)
		settings, err := s.standardSettings(40, 60)
		if err != nil {
			t.Fatal(err)
		}
		st := settings[1] // LKI
		start := time.Now()
		if _, err := runKAPXFGS(st, 2, 20, 100); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		times = append(times, elapsed)
		t.Logf("scale=%d (%d nodes): %v", scale, st.g.NumNodes(), elapsed)
	}
	// 4x the data should cost well under 16x the time (quadratic blowup).
	if times[1] > 12*times[0] {
		t.Fatalf("superlinear scaling: %v at scale 1 vs %v at scale 4", times[0], times[1])
	}
}

package experiments

import (
	"fmt"

	"github.com/cwru-db/fgs/internal/baseline"
	"github.com/cwru-db/fgs/internal/gen"
	"github.com/cwru-db/fgs/internal/submod"
)

// Exp-2 compares efficiency of the pattern-based methods only (APXFGS,
// Online-APXFGS, Grami, d-sum), as in the paper's Fig. 9.

func timeRows(exp, dataset, xLabel string, x float64, outcomes map[string]algoOutcome) []Row {
	var rows []Row
	for _, algo := range []string{"APXFGS", "Online-APXFGS", "Grami", "d-sum"} {
		o, ok := outcomes[algo]
		if !ok {
			continue
		}
		rows = append(rows, Row{Exp: exp, Dataset: dataset, Algo: algo, XLabel: xLabel, X: x, Metric: "time_ms", Value: float64(o.elapsed.Milliseconds())})
	}
	return rows
}

// Fig9a reproduces Fig. 9(a): wall time per pattern-based algorithm per
// dataset under the Exp-1 setting.
func (s *Suite) Fig9a() ([]Row, error) {
	r, k, n, lower, upper := s.exp1Params()
	settings, err := s.standardSettings(lower, upper)
	if err != nil {
		return nil, fmt.Errorf("fig9a: %w", err)
	}
	var rows []Row
	for _, st := range settings {
		outcomes, err := s.runAll(st, r, k, n)
		if err != nil {
			return nil, fmt.Errorf("fig9a: %w", err)
		}
		rows = append(rows, timeRows("fig9a", st.name, "", 0, outcomes)...)
	}
	return rows, nil
}

// patternLineup runs only the four timed algorithms (no Mosso/MMPG), for the
// parameter sweeps of Figs. 9(b)-9(d).
func (s *Suite) patternLineup(st setting, r, k, n int) (map[string]algoOutcome, error) {
	out := make(map[string]algoOutcome, 4)
	apx, err := runKAPXFGS(st, r, k, n)
	if err != nil {
		return nil, err
	}
	out["APXFGS"] = apx
	onl, err := runOnline(st, r, k, n)
	if err != nil {
		return nil, err
	}
	out["Online-APXFGS"] = onl
	out["Grami"] = fromBaseline(baseline.Grami(st.g, st.groups, baseline.GramiConfig{R: r, K: k, N: n, Mining: miningCfg(st.workers)}))
	out["d-sum"] = fromBaseline(baseline.DSum(st.g, st.groups, baseline.DSumConfig{D: r, K: k, N: n, Mining: miningCfg(st.workers)}))
	return out, nil
}

// Fig9b reproduces Fig. 9(b): time on DBP as k varies 10..50.
func (s *Suite) Fig9b() ([]Row, error) {
	r, _, n, lower, upper := s.exp1Params()
	settings, err := s.standardSettings(lower, upper)
	if err != nil {
		return nil, fmt.Errorf("fig9b: %w", err)
	}
	st := settings[0] // DBP
	var rows []Row
	for _, k := range []int{10, 20, 30, 40, 50} {
		outcomes, err := s.patternLineup(st, r, k, n)
		if err != nil {
			return nil, fmt.Errorf("fig9b k=%d: %w", k, err)
		}
		rows = append(rows, timeRows("fig9b", st.name, "k", float64(k), outcomes)...)
	}
	return rows, nil
}

// Fig9c reproduces Fig. 9(c): time on LKI as n varies 50..250.
func (s *Suite) Fig9c() ([]Row, error) {
	lki := s.Dataset("LKI")
	r, k := 2, 20
	util := func() submod.Utility { return submod.NewNeighborCoverage(lki, submod.NeighborsIn, "corev") }
	var rows []Row
	for _, n := range []int{50, 100, 150, 200, 250} {
		groups, err := gen.GroupsByAttr(lki, "user", "gender", []string{"male", "female"}, n*4/10, n*6/10)
		if err != nil {
			return nil, fmt.Errorf("fig9c n=%d: %w", n, err)
		}
		st := setting{name: "LKI", g: lki, groups: groups, util: util, workers: s.Workers}
		outcomes, err := s.patternLineup(st, r, k, n)
		if err != nil {
			return nil, fmt.Errorf("fig9c n=%d: %w", n, err)
		}
		rows = append(rows, timeRows("fig9c", "LKI", "n", float64(n), outcomes)...)
	}
	return rows, nil
}

// Fig9d reproduces Fig. 9(d): time on LKI as the hop bound r varies 1..5,
// with n=50 and k=20 as in the paper.
func (s *Suite) Fig9d() ([]Row, error) {
	lki := s.Dataset("LKI")
	k, n := 20, 50
	util := func() submod.Utility { return submod.NewNeighborCoverage(lki, submod.NeighborsIn, "corev") }
	groups, err := gen.GroupsByAttr(lki, "user", "gender", []string{"male", "female"}, 20, 30)
	if err != nil {
		return nil, fmt.Errorf("fig9d: %w", err)
	}
	var rows []Row
	for r := 1; r <= 5; r++ {
		st := setting{name: "LKI", g: lki, groups: groups, util: util, workers: s.Workers}
		outcomes, err := s.patternLineup(st, r, k, n)
		if err != nil {
			return nil, fmt.Errorf("fig9d r=%d: %w", r, err)
		}
		rows = append(rows, timeRows("fig9d", "LKI", "r", float64(r), outcomes)...)
	}
	return rows, nil
}

package submod

import (
	"errors"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

func twoGroups(t *testing.T) *Groups {
	t.Helper()
	gs, err := NewGroups(
		Group{Name: "male", Members: []graph.NodeID{0, 1, 2, 3}, Lower: 1, Upper: 2},
		Group{Name: "female", Members: []graph.NodeID{4, 5, 6}, Lower: 2, Upper: 3},
	)
	if err != nil {
		t.Fatalf("NewGroups: %v", err)
	}
	return gs
}

func TestNewGroupsValidation(t *testing.T) {
	cases := []struct {
		name string
		gs   []Group
	}{
		{"empty", nil},
		{"negative lower", []Group{{Name: "g", Members: []graph.NodeID{0}, Lower: -1, Upper: 1}}},
		{"lower above upper", []Group{{Name: "g", Members: []graph.NodeID{0}, Lower: 2, Upper: 1}}},
		{"upper above size", []Group{{Name: "g", Members: []graph.NodeID{0}, Lower: 0, Upper: 2}}},
		{"overlap", []Group{
			{Name: "a", Members: []graph.NodeID{0, 1}, Upper: 1},
			{Name: "b", Members: []graph.NodeID{1, 2}, Upper: 1},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewGroups(c.gs...); err == nil {
				t.Fatal("invalid groups accepted")
			}
		})
	}
}

func TestGroupsIndexing(t *testing.T) {
	gs := twoGroups(t)
	if gs.Len() != 2 || gs.Size() != 7 {
		t.Fatalf("Len=%d Size=%d", gs.Len(), gs.Size())
	}
	if i, ok := gs.IndexOf(5); !ok || i != 1 {
		t.Fatalf("IndexOf(5) = %d,%v", i, ok)
	}
	if _, ok := gs.IndexOf(99); ok {
		t.Fatal("IndexOf(99) should fail")
	}
	if gs.SumLower() != 3 {
		t.Fatalf("SumLower = %d, want 3", gs.SumLower())
	}
	counts := gs.Counts([]graph.NodeID{0, 1, 4, 99})
	if counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
	setCounts := gs.CountsOfSet(graph.NodeSetOf([]graph.NodeID{0, 1, 4, 99}))
	if setCounts[0] != 2 || setCounts[1] != 1 {
		t.Fatalf("CountsOfSet = %v", setCounts)
	}
}

func TestSatisfiesBounds(t *testing.T) {
	gs := twoGroups(t)
	if !gs.SatisfiesBounds([]int{1, 2}) || !gs.SatisfiesBounds([]int{2, 3}) {
		t.Error("feasible counts rejected")
	}
	for _, bad := range [][]int{{0, 2}, {3, 2}, {1, 1}, {1, 4}} {
		if gs.SatisfiesBounds(bad) {
			t.Errorf("infeasible counts %v accepted", bad)
		}
	}
}

func TestExtendableM(t *testing.T) {
	gs := twoGroups(t) // male [1,2], female [2,3]
	n := 4
	// Empty selection: both groups extendable (reserve 1+2=3 <= 4 after add).
	if !gs.ExtendableM([]int{0, 0}, 0, n) || !gs.ExtendableM([]int{0, 0}, 1, n) {
		t.Error("empty selection should be extendable in both groups")
	}
	// Upper bound blocks: male already at 2.
	if gs.ExtendableM([]int{2, 0}, 0, n) {
		t.Error("male at upper bound should not be extendable")
	}
	// Reserve blocks: with male at 2 and female at 0, adding a third male is
	// blocked above; adding female is fine (2 + max(1,2)=... total 2+2+... ).
	if !gs.ExtendableM([]int{2, 0}, 1, n) {
		t.Error("female should be extendable")
	}
	// Budget reserve: n=3, counts male=1 female=0. Adding male -> counts'
	// male=2, reserve female=2, total 4 > 3: blocked.
	if gs.ExtendableM([]int{1, 0}, 0, 3) {
		t.Error("reserve for female lower bound should block a second male at n=3")
	}
	// But adding a female is allowed: max(1,1)+max(1,2)=3 <= 3.
	if !gs.ExtendableM([]int{1, 0}, 1, 3) {
		t.Error("female extendable at n=3")
	}
}

func TestSwapFeasible(t *testing.T) {
	gs := twoGroups(t)
	n := 4
	// counts male=2, female=2. Swap male out, female in: female->3 <= upper.
	if !gs.SwapFeasible([]int{2, 2}, 0, 1, n) {
		t.Error("male->female swap should be feasible")
	}
	// Swap female out, male in: male 2->3 exceeds upper 2? counts male=2,
	// in=male gives 3 > 2: infeasible.
	if gs.SwapFeasible([]int{2, 2}, 1, 0, n) {
		t.Error("swap exceeding male upper bound accepted")
	}
	// Swapping within a group is always allowed (counts unchanged).
	if !gs.SwapFeasible([]int{2, 2}, 0, 0, n) {
		t.Error("in-group swap rejected")
	}
	// Cannot swap out of an empty group.
	if gs.SwapFeasible([]int{0, 2}, 0, 1, n) {
		t.Error("swap out of empty group accepted")
	}
	// Reserve condition: n=4, counts male=2 female=2; swapping female out and
	// male in is already blocked by upper. Try n=3 with counts male=1,
	// female=2: swap female->male gives male=2,female=1; reserve
	// max(2,1)+max(1,2)=4 > 3: blocked.
	if gs.SwapFeasible([]int{1, 2}, 1, 0, 3) {
		t.Error("swap violating reserve accepted")
	}
}

func TestErrInfeasibleIsSentinel(t *testing.T) {
	gs := twoGroups(t)
	_, err := FairSelect(gs, NewCardinality(), 2) // sum of lowers is 3 > 2
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	tid := TraceID{0x4b, 0xf9, 0x2f, 0x35, 0x77, 0xb3, 0x4d, 0xa6, 0xa3, 0xce, 0x92, 0x9d, 0x0e, 0x0e, 0x47, 0x36}
	span := SpanID{0x00, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7}
	h := FormatTraceparent(tid, span, true)
	want := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if h != want {
		t.Fatalf("FormatTraceparent = %q, want %q", h, want)
	}
	gotTid, gotSpan, sampled, ok := ParseTraceparent(h)
	if !ok || gotTid != tid || gotSpan != span || !sampled {
		t.Fatalf("ParseTraceparent(%q) = %v %v %v %v", h, gotTid, gotSpan, sampled, ok)
	}
	if _, _, sampled, ok = ParseTraceparent(FormatTraceparent(tid, span, false)); !ok || sampled {
		t.Fatalf("unsampled round trip: sampled=%v ok=%v", sampled, ok)
	}
}

func TestParseTraceparentRejectsInvalid(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	bad := []string{
		"",
		"garbage",
		valid[:54],                   // truncated
		valid + "-extra",             // version 00 must be exactly 55 chars
		"ff" + valid[2:],             // version ff is forbidden
		"0x" + valid[2:],             // non-hex version
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01", // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-" + strings.Repeat("0", 16) + "-01", // zero parent
		"00-4bf92f3577b34da6a3ce929d0e0e473X-00f067aa0ba902b7-01",                // non-hex trace ID
		strings.Replace(valid, "-", "_", 1),                                      // wrong separator
	}
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", h)
		}
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Per the spec's forward-compatibility rule a higher version with
	// trailing fields parses as version 00 plus ignored extras.
	h := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extrafield"
	tid, _, _, ok := ParseTraceparent(h)
	if !ok || tid.IsZero() {
		t.Fatalf("future version with trailing field rejected: ok=%v", ok)
	}
	// ...but only when the extras are properly "-"-separated.
	if _, _, _, ok := ParseTraceparent(h[:55] + "junk"); ok {
		t.Fatal("future version with malformed trailing field accepted")
	}
}

func TestTraceIDGenUniqueNonZero(t *testing.T) {
	g := NewTraceIDGen(42)
	seen := make(map[TraceID]bool)
	for i := 0; i < 10000; i++ {
		id := g.Next()
		if id.IsZero() {
			t.Fatal("generated the invalid zero trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %s after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestTraceIDGenConcurrentUnique(t *testing.T) {
	g := NewTraceIDGen(7)
	const workers, per = 8, 500
	ids := make([][]TraceID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ids[w] = append(ids[w], g.Next())
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[TraceID]bool, workers*per)
	for _, batch := range ids {
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("duplicate trace ID %s across goroutines", id)
			}
			seen[id] = true
		}
	}
}

func TestReqTraceStages(t *testing.T) {
	clk := NewFrozen(time.Unix(1000, 0))
	rt := NewReqTrace(clk, TraceID{1}, SpanID{})

	sp := rt.Start(StageCache)
	clk.Advance(250 * time.Microsecond)
	sp.End()

	sp = rt.Start(StageCompute)
	clk.Advance(12 * time.Millisecond)
	sp.End()

	// A stage entered twice accumulates.
	sp = rt.Start(StageCache)
	clk.Advance(250 * time.Microsecond)
	sp.End()

	if d, ok := rt.StageDur(StageCache); !ok || d != 500*time.Microsecond {
		t.Fatalf("StageCache = %v %v, want 500µs true", d, ok)
	}
	if d, ok := rt.StageDur(StageCompute); !ok || d != 12*time.Millisecond {
		t.Fatalf("StageCompute = %v %v, want 12ms true", d, ok)
	}
	if _, ok := rt.StageDur(StageEncode); ok {
		t.Fatal("StageEncode reported as run, but it never started")
	}
	if got := rt.Elapsed(); got != 12*time.Millisecond+500*time.Microsecond {
		t.Fatalf("Elapsed = %v", got)
	}

	want := "cache;dur=0.500, compute;dur=12.000"
	if got := rt.ServerTiming(); got != want {
		t.Fatalf("ServerTiming = %q, want %q", got, want)
	}
	parsed := ParseServerTiming(rt.ServerTiming())
	if parsed["cache"] != 500*time.Microsecond || parsed["compute"] != 12*time.Millisecond {
		t.Fatalf("ParseServerTiming round trip = %v", parsed)
	}
}

func TestReqTraceNilSafe(t *testing.T) {
	var rt *ReqTrace
	rt.SetEndpoint("x")
	rt.SetEpoch(3)
	rt.SetCacheHit(true)
	sp := rt.Start(StageCompute)
	sp.End()
	if rt.IDString() != "" || !rt.ID().IsZero() || rt.ServerTiming() != "" || rt.Elapsed() != 0 {
		t.Fatal("nil ReqTrace leaked state")
	}
	if ev := rt.Event(200, time.Second); ev != (FlightEvent{}) {
		t.Fatalf("nil Event = %+v", ev)
	}
	var ss *StageStats
	ss.ObserveTrace(rt) // must not panic
	if ss.ObsMetrics() != nil {
		t.Fatal("nil StageStats exported metrics")
	}
}

func TestReqTraceContext(t *testing.T) {
	if rt := ReqTraceFrom(context.Background()); rt != nil {
		t.Fatal("empty context yielded a trace")
	}
	rt := NewReqTrace(NewFrozen(time.Unix(0, 0)), TraceID{9}, SpanID{})
	ctx := WithReqTrace(context.Background(), rt)
	if got := ReqTraceFrom(ctx); got != rt {
		t.Fatal("trace did not round-trip through the context")
	}
}

func TestReqTraceEvent(t *testing.T) {
	clk := NewFrozen(time.Unix(5, 0))
	rt := NewReqTrace(clk, TraceID{0xab}, SpanID{1})
	rt.SetEndpoint("summarize")
	rt.SetEpoch(7)
	rt.SetCacheHit(true)
	sp := rt.Start(StagePin)
	clk.Advance(time.Millisecond)
	sp.End()

	ev := rt.Event(200, 3*time.Millisecond)
	if ev.Trace != rt.ID() || ev.Endpoint != "summarize" || ev.Status != 200 ||
		ev.Epoch != 7 || !ev.CacheHit || ev.Total != int64(3*time.Millisecond) {
		t.Fatalf("Event = %+v", ev)
	}
	if ev.Stages[StagePin] != int64(time.Millisecond) || ev.Stages[StageCompute] != 0 {
		t.Fatalf("Event stages = %v", ev.Stages)
	}
	if ev.Unix != time.Unix(5, 0).UnixNano() {
		t.Fatalf("Event start = %d", ev.Unix)
	}
}

func TestStageStatsExemplars(t *testing.T) {
	clk := NewFrozen(time.Unix(0, 0))
	ss := NewStageStats()

	rt := NewReqTrace(clk, TraceID{1}, SpanID{})
	sp := rt.Start(StageCompute)
	clk.Advance(100 * time.Microsecond)
	sp.End()
	ss.ObserveTrace(rt)

	ms := ss.ObsMetrics()
	if len(ms) != 1 {
		t.Fatalf("ObsMetrics = %d series, want 1 (untouched stages skipped)", len(ms))
	}
	m := ms[0]
	if m.Name != "fgs_req_stage_us" || len(m.Labels) != 1 || m.Labels[0].Val != "compute" {
		t.Fatalf("series = %+v", m)
	}
	if m.Hist.Count != 1 || m.Hist.Sum != 100 {
		t.Fatalf("hist = %+v", m.Hist)
	}
	b := HistBucketOf(100)
	ex := m.Exemplars[b]
	if ex == nil || ex.Value != 100 || ex.Labels[0].Key != "trace_id" || ex.Labels[0].Val != rt.IDString() {
		t.Fatalf("exemplar at bucket %d = %+v", b, ex)
	}
	for i, e := range m.Exemplars {
		if i != b && e != nil {
			t.Fatalf("unexpected exemplar at bucket %d", i)
		}
	}
}

func TestStageStatsConcurrent(t *testing.T) {
	ss := NewStageStats()
	clk := NewFrozen(time.Unix(0, 0))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rt := NewReqTrace(clk, TraceID{byte(w), byte(i)}, SpanID{})
				sp := rt.Start(StageCompute)
				sp.End()
				ss.ObserveTrace(rt)
				if i%16 == 0 {
					ss.ObsMetrics() // concurrent export must be race-free
				}
			}
		}(w)
	}
	wg.Wait()
	ms := ss.ObsMetrics()
	if len(ms) != 1 || ms[0].Hist.Count != 8*200 {
		t.Fatalf("after concurrent observes: %+v", ms)
	}
}

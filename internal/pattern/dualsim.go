package pattern

import (
	"github.com/cwru-db/fgs/internal/graph"
)

// DualSim computes the (maximal) dual simulation of a pattern in the graph:
// for each pattern node u, the set sim(u) of graph nodes v such that
//
//   - v satisfies u's label and literals,
//   - for every pattern edge (u,u',l) some v' in sim(u') has edge (v,v',l),
//   - for every pattern edge (u”,u,l) some v” in sim(u”) has edge (v”,v,l).
//
// Dual simulation is the lossy matching semantics of d-summaries [42]: it
// preserves parent/child label structure but not injectivity or cycles, and
// is computable in polynomial time. The d-sum baseline uses sim(focus) as its
// (approximate) cover set.
//
// The returned slice is indexed by pattern node; a nil result means some
// pattern node has an empty simulation set (the pattern matches nothing).
func (m *Matcher) DualSim(p *Pattern) []graph.NodeSet {
	c := m.compiledFor(p)
	if !c.ok {
		return nil
	}
	n := len(p.Nodes)
	sim := make([]graph.NodeSet, n)
	for u := 0; u < n; u++ {
		set := graph.NewNodeSet(0)
		for _, v := range m.g.NodesWithLabelID(c.labels[u]) {
			if c.nodeOK(m.g, u, v) {
				set.Add(v)
			}
		}
		if set.Len() == 0 {
			return nil
		}
		sim[u] = set
	}

	// Refine to fixpoint. Patterns are small, so a simple sweep loop is fine.
	changed := true
	for changed {
		changed = false
		for u := 0; u < n; u++ {
			for v := range sim[u] {
				if !dualSimNodeOK(m.g, c, sim, u, v) {
					sim[u].Remove(v)
					changed = true
				}
			}
			if sim[u].Len() == 0 {
				return nil
			}
		}
	}
	return sim
}

// dualSimNodeOK checks the edge conditions for one (pattern node, graph node)
// pair against the current simulation sets.
func dualSimNodeOK(g *graph.Graph, c *compiled, sim []graph.NodeSet, u int, v graph.NodeID) bool {
	for _, e := range c.adj[u] {
		found := false
		if e.out {
			for _, ge := range g.Out(v) {
				if ge.Label == e.label && sim[e.other].Has(ge.To) {
					found = true
					break
				}
			}
		} else {
			for _, ge := range g.In(v) {
				if ge.Label == e.label && sim[e.other].Has(ge.To) {
					found = true
					break
				}
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// SimCover returns the nodes dual simulation assigns to the focus — the
// d-summary notion of "covered" nodes. Returns nil when the pattern has no
// dual simulation in the graph.
func (m *Matcher) SimCover(p *Pattern) graph.NodeSet {
	sim := m.DualSim(p)
	if sim == nil {
		return nil
	}
	return sim[p.Focus]
}

// SimCoveredEdges returns the graph edges "covered" under dual simulation:
// for each pattern edge (u,u',l), every graph edge (v,v',l) with v in sim(u)
// and v' in sim(u'). This is the edge set a d-summary claims to describe.
func (m *Matcher) SimCoveredEdges(p *Pattern) graph.EdgeSet {
	sim := m.DualSim(p)
	if sim == nil {
		return graph.NewEdgeSet(0)
	}
	c := m.compiledFor(p)
	edges := graph.NewEdgeSet(0)
	for u := 0; u < len(p.Nodes); u++ {
		for _, e := range c.adj[u] {
			if !e.out {
				continue
			}
			for v := range sim[u] {
				for _, ge := range m.g.Out(v) {
					if ge.Label == e.label && sim[e.other].Has(ge.To) {
						edges.Add(graph.EdgeRef{From: v, To: ge.To, Label: ge.Label})
					}
				}
			}
		}
	}
	return edges
}

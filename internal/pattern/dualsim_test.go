package pattern

import (
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

func TestDualSimSupersetOfIsoCover(t *testing.T) {
	g, _ := fixture(t)
	m := NewMatcher(g, 0)
	p := star()
	iso := m.Matches(p)
	sim := m.SimCover(p)
	if sim == nil {
		t.Fatal("SimCover is nil")
	}
	for _, v := range iso {
		if !sim.Has(v) {
			t.Errorf("iso-covered node %d missing from dual simulation cover", v)
		}
	}
}

// Dual simulation is lossy: a node with a single recommender matches the
// two-recommender star under simulation (no injectivity) but not under
// isomorphism. Classic example: simulation collapses the two pattern branches
// onto the same graph branch.
func TestDualSimIsLossy(t *testing.T) {
	g := graph.New()
	f := g.AddNode("user", nil)
	r := g.AddNode("user", nil)
	extra := g.AddNode("user", nil) // r also recommends someone else, so r survives both branches
	if err := g.AddEdge(r, f, "recommend"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(r, extra, "recommend"); err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(g, 0)
	p := star()
	if m.MatchAt(p, f) {
		t.Fatal("iso should reject single recommender")
	}
	sim := m.SimCover(p)
	if sim == nil || !sim.Has(f) {
		t.Fatal("dual simulation should accept single recommender (lossy)")
	}
}

func TestDualSimRespectsLabelsAndLiterals(t *testing.T) {
	g, ids := fixture(t)
	m := NewMatcher(g, 0)
	p := star(Literal{Key: "exp", Val: "4"})
	sim := m.SimCover(p)
	if sim == nil {
		t.Fatal("expected non-empty simulation")
	}
	if sim.Has(ids[0]) {
		t.Error("exp=5 node in exp=4 simulation cover")
	}
	if !sim.Has(ids[5]) || !sim.Has(ids[8]) {
		t.Error("exp=4 nodes missing from simulation cover")
	}
}

func TestDualSimEmptyWhenNoMatch(t *testing.T) {
	g, _ := fixture(t)
	m := NewMatcher(g, 0)
	// Pattern requires an outgoing edge from a node labeled org: none exist.
	p := &Pattern{
		Focus: 0,
		Nodes: []Node{{Label: "user"}, {Label: "org"}},
		Edges: []Edge{{From: 0, To: 1, Label: "recommend"}},
	}
	if m.DualSim(p) != nil {
		t.Error("DualSim should be nil when a node's sim set is empty")
	}
	if m.SimCover(p) != nil {
		t.Error("SimCover should be nil when DualSim fails")
	}
}

func TestDualSimRefinementPropagates(t *testing.T) {
	// Chain pattern a->b->c over a graph where the chain only exists from one
	// node: refinement must prune nodes that satisfy labels but not structure.
	g := graph.New()
	a := g.AddNode("a", nil)
	b1 := g.AddNode("b", nil)
	b2 := g.AddNode("b", nil) // b2 has no outgoing edge to c
	c := g.AddNode("c", nil)
	if err := g.AddEdge(a, b1, "e"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b1, c, "e"); err != nil {
		t.Fatal(err)
	}
	a2 := g.AddNode("a", nil) // a2 -> b2 only; must be pruned
	if err := g.AddEdge(a2, b2, "e"); err != nil {
		t.Fatal(err)
	}
	p := &Pattern{
		Focus: 0,
		Nodes: []Node{{Label: "a"}, {Label: "b"}, {Label: "c"}},
		Edges: []Edge{{From: 0, To: 1, Label: "e"}, {From: 1, To: 2, Label: "e"}},
	}
	m := NewMatcher(g, 0)
	sim := m.DualSim(p)
	if sim == nil {
		t.Fatal("expected simulation")
	}
	if !sim[0].Has(a) || sim[0].Has(a2) {
		t.Errorf("sim(focus) = %v, want {a} only", sim[0])
	}
	if sim[1].Has(b2) {
		t.Error("b2 should be pruned (no path to c)")
	}
	_ = b1
}

func TestSimCoveredEdges(t *testing.T) {
	g, ids := fixture(t)
	m := NewMatcher(g, 0)
	p := star(Literal{Key: "exp", Val: "4"})
	edges := m.SimCoveredEdges(p)
	rec, _ := g.EdgeLabelID("recommend")
	// Covered: edges into v5 (from v6, v7) and into v8 (from v9, v7).
	want := []graph.EdgeRef{
		{From: ids[6], To: ids[5], Label: rec},
		{From: ids[7], To: ids[5], Label: rec},
		{From: ids[9], To: ids[8], Label: rec},
		{From: ids[7], To: ids[8], Label: rec},
	}
	if edges.Len() != len(want) {
		t.Fatalf("SimCoveredEdges = %d edges, want %d", edges.Len(), len(want))
	}
	for _, e := range want {
		if !edges.Has(e) {
			t.Errorf("missing sim-covered edge %v", e)
		}
	}
	// Unmatchable pattern covers nothing.
	bad := NewNodePattern("alien")
	if m.SimCoveredEdges(bad).Len() != 0 {
		t.Error("unmatchable pattern should cover no edges")
	}
}

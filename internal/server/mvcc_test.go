package server

import (
	"github.com/cwru-db/fgs/internal/leakcheck"

	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/cwru-db/fgs/internal/core"
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/obs"
	"github.com/cwru-db/fgs/internal/submod"
)

// newHookedServer mounts an already-built Server (e.g. one with a testHook
// installed) on an httptest listener.
func newHookedServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestCrossModeDeterminism runs the canonical request script against an
// MVCC server and a locked-baseline server: every response body must be
// byte-identical. The MVCC read path serves from replicas, but replicas are
// byte-identical clones kept converged by delta replay, so the mode is
// invisible in responses.
func TestCrossModeDeterminism(t *testing.T) {
	leakcheck.Check(t)
	_, mvcc := newTestServer(t, Config{ReadMode: ReadModeMVCC})
	_, locked := newTestServer(t, Config{ReadMode: ReadModeLocked})
	a := runScript(t, mvcc)
	b := runScript(t, locked)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("step %d (%s %s): mvcc vs locked differ:\n  %s\n  %s",
				i, determinismScript[i].path, determinismScript[i].body, a[i], b[i])
		}
	}
}

// TestSlowReadDoesNotBlockWrite holds a summarize in flight via the test
// hook and checks that an update completes while the reader is pinned — the
// acceptance criterion for dropping the read lock. In locked mode the same
// sequence would wedge: the RLock held across the slow compute blocks the
// writer until the reader finishes.
func TestSlowReadDoesNotBlockWrite(t *testing.T) {
	leakcheck.Check(t)
	g, groups := testGraph(t)
	s, err := New(g, groups, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	s.testHook = func(endpoint string) {
		if endpoint == "summarize" {
			close(entered)
			<-release
		}
	}
	ts := newHookedServer(t, s)

	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		resp, body := post(t, ts, "/v1/summarize", `{"n":4}`)
		wantStatus(t, resp, body, 200)
	}()
	<-entered

	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		resp, body := post(t, ts, "/v1/update", `{"insert":[{"from":0,"to":12,"label":"slowtest"}]}`)
		wantStatus(t, resp, body, 200)
	}()
	select {
	case <-writeDone:
	case <-time.After(10 * time.Second):
		t.Fatal("update blocked behind an in-flight read")
	}
	close(release)
	<-readDone
	if s.Epoch() != 1 {
		t.Fatalf("epoch = %d after the write, want 1", s.Epoch())
	}
}

// TestPinnedEpochConsistency is the -race torn-view hammer: readers issue
// view and stats requests while writers churn the graph, and every response
// is binned by the epoch it reports. A response computed at epoch e must be
// byte-identical to every other response of the same endpoint at e — a torn
// view (graph from one epoch, summary or epoch stamp from another) shows up
// as two different bodies claiming the same epoch.
func TestPinnedEpochConsistency(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("hammer test skipped in -short")
	}
	// Cache off so every response is computed against a pinned view rather
	// than replayed from the cache.
	_, ts := newTestServer(t, Config{Workers: 8, QueueDepth: 512, CacheEntries: -1})

	const readers = 8
	const writers = 2
	const perWorker = 25
	var mu sync.Mutex
	byEpoch := make(map[string][][]byte) // "endpoint|epoch" -> bodies
	var wg sync.WaitGroup
	for c := 0; c < readers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				path, body := "/v1/view", `{"pattern":"n 0 user\nf 0"}`
				if i%4 == 3 {
					path, body = "/v1/workload", ``
				}
				resp, respBody := post(t, ts, path, body)
				if resp.StatusCode != 200 {
					continue // shed under load; correctness is per-epoch bytes
				}
				var hdr struct {
					Epoch uint64 `json:"epoch"`
				}
				if err := json.Unmarshal(respBody, &hdr); err != nil {
					t.Errorf("%s: undecodable body %q", path, respBody)
					return
				}
				key := fmt.Sprintf("%s|%d", path, hdr.Epoch)
				mu.Lock()
				byEpoch[key] = append(byEpoch[key], respBody)
				mu.Unlock()
			}
		}(c)
	}
	for c := 0; c < writers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					post(t, ts, "/v1/update", fmt.Sprintf(`{"insert":[{"from":%d,"to":%d,"label":"churn%d"}]}`, c, 20+c, i/2))
				} else {
					post(t, ts, "/v1/update", fmt.Sprintf(`{"delete":[{"from":%d,"to":%d,"label":"churn%d"}]}`, c, 20+c, i/2))
				}
			}
		}(c)
	}
	wg.Wait()

	distinctEpochs := 0
	for key, bodies := range byEpoch {
		distinctEpochs++
		for _, b := range bodies[1:] {
			if !bytes.Equal(bodies[0], b) {
				t.Errorf("%s: torn view — two bodies at one epoch:\n  %s\n  %s", key, bodies[0], b)
				break
			}
		}
	}
	if distinctEpochs < 2 {
		t.Fatalf("hammer observed %d epoch bins; churn did not overlap reads", distinctEpochs)
	}
}

// --- white-box viewSet tests ---------------------------------------------

// applyAndPublish pushes one delta through a maintainer and its viewSet the
// way computeUpdate does.
func applyAndPublish(t *testing.T, g *graph.Graph, maint *core.Maintainer, vs *viewSet, epoch uint64, delta core.Delta) {
	t.Helper()
	sum, applied, err := maint.Apply(delta)
	if err != nil || applied == 0 {
		t.Fatalf("apply epoch %d: applied=%d err=%v", epoch, applied, err)
	}
	vs.publish(delta, epoch, sum)
}

func textBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestViewSetReplicaConvergence drives publishes through a small pool and
// asserts the invariant everything rests on: the published replica's graph
// is byte-identical to the writer's live graph at every epoch, whether the
// replica came from a fresh clone or from catch-up replay several epochs
// behind.
func TestViewSetReplicaConvergence(t *testing.T) {
	leakcheck.Check(t)
	g, groups := testGraph(t)
	maint, sum := core.NewMaintainer(g, groups, mustUtility(t, g, "coverage"), core.Config{R: 2, N: 8})
	vs := newViewSet(g, sum, 2, obs.System(), 0)

	// The whole pool (2 replicas) is cloned at boot; publishes only replay.
	// Pin the boot view so its replica stays out of the pool until we unpin:
	// epoch 1 lands on the prewarmed spare, and epoch 2 must then replay the
	// recycled boot replica across two epochs.
	v0 := vs.pin()
	applyAndPublish(t, g, maint, vs, 1, core.Delta{Insert: []core.EdgeUpdate{{From: 0, To: 10, Label: "vs"}}})
	if got := vs.stats().Clones; got != 2 {
		t.Fatalf("clones = %d after first publish, want the 2 boot clones", got)
	}
	if !bytes.Equal(textBytes(t, vs.pinGraph(t)), textBytes(t, g)) {
		t.Fatal("epoch 1 replica diverged from live graph")
	}
	vs.unpin(v0) // boot replica (epoch 0) returns to the pool
	applyAndPublish(t, g, maint, vs, 2, core.Delta{Insert: []core.EdgeUpdate{{From: 1, To: 11, Label: "vs"}}})
	if !bytes.Equal(textBytes(t, vs.pinGraph(t)), textBytes(t, g)) {
		t.Fatal("epoch 2 replica (replayed from epoch 0) diverged from live graph")
	}
	applyAndPublish(t, g, maint, vs, 3, core.Delta{Delete: []core.EdgeUpdate{{From: 0, To: 10, Label: "vs"}}})
	if !bytes.Equal(textBytes(t, vs.pinGraph(t)), textBytes(t, g)) {
		t.Fatal("epoch 3 replica diverged after delete replay")
	}
	if st := vs.stats(); st.Replicas != 2 || st.Clones != 2 {
		t.Fatalf("pool changed size after publishes: %+v", st)
	}
}

// pinGraph pins the current view just long enough to hand its graph to an
// assertion; the view stays current for the test's duration so the graph
// stays valid after unpin.
func (vs *viewSet) pinGraph(t *testing.T) *graph.Graph {
	t.Helper()
	v := vs.pin()
	g := v.g
	vs.unpin(v)
	return g
}

// TestViewSetWriterWaitsAtCap pins the current view, exhausts the pool, and
// checks the writer blocks in publish until the reader releases — bounded
// memory under reader pressure, observable via writer_waits.
func TestViewSetWriterWaitsAtCap(t *testing.T) {
	leakcheck.Check(t)
	g, groups := testGraph(t)
	maint, sum := core.NewMaintainer(g, groups, mustUtility(t, g, "coverage"), core.Config{R: 2, N: 8})
	vs := newViewSet(g, sum, 2, obs.System(), 0)

	applyAndPublish(t, g, maint, vs, 1, core.Delta{Insert: []core.EdgeUpdate{{From: 0, To: 10, Label: "cap"}}})
	pinned := vs.pin() // hold epoch 1; pool: current(e1, pinned) + free(e0)
	applyAndPublish(t, g, maint, vs, 2, core.Delta{Insert: []core.EdgeUpdate{{From: 1, To: 11, Label: "cap"}}})
	// Now current=e2, retired e1 still pinned, free empty, replicas at cap.

	done := make(chan struct{})
	go func() {
		defer close(done)
		applyAndPublish(t, g, maint, vs, 3, core.Delta{Insert: []core.EdgeUpdate{{From: 2, To: 12, Label: "cap"}}})
	}()
	select {
	case <-done:
		t.Fatal("publish completed with the pool exhausted")
	case <-time.After(100 * time.Millisecond):
	}
	vs.unpin(pinned)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publish still blocked after the reader released")
	}
	st := vs.stats()
	if st.WriterWaits == 0 {
		t.Fatal("writer_waits = 0; the capped publish never registered its wait")
	}
	if !bytes.Equal(textBytes(t, vs.pinGraph(t)), textBytes(t, g)) {
		t.Fatal("epoch 3 replica diverged after a waited publish")
	}
}

func mustUtility(t *testing.T, g *graph.Graph, spec string) submod.Utility {
	t.Helper()
	u, err := buildUtility(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

package fgs_test

import (
	"bytes"
	"strings"
	"testing"

	fgs "github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/datasets"
	"github.com/cwru-db/fgs/spread"
)

// buildTalentGraph assembles the quickstart fixture through the public API.
func buildTalentGraph(t *testing.T) (*fgs.Graph, *fgs.Groups) {
	t.Helper()
	g := fgs.NewGraph()
	v0 := g.AddNode("user", map[string]string{"exp": "5", "gender": "m"})
	v1 := g.AddNode("user", map[string]string{"exp": "4", "gender": "m"})
	v2 := g.AddNode("user", map[string]string{"exp": "4", "gender": "f"})
	v3 := g.AddNode("user", map[string]string{"exp": "3", "gender": "f"})
	for _, target := range []fgs.NodeID{v0, v1, v2, v3} {
		for i := 0; i < 2; i++ {
			r := g.AddNode("user", nil)
			if err := g.AddEdge(r, target, "recommend"); err != nil {
				t.Fatal(err)
			}
		}
	}
	groups, err := fgs.NewGroups(
		fgs.Group{Name: "m", Members: []fgs.NodeID{v0, v1}, Lower: 1, Upper: 2},
		fgs.Group{Name: "f", Members: []fgs.NodeID{v2, v3}, Lower: 1, Upper: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g, groups
}

func TestPublicSummarize(t *testing.T) {
	g, groups := buildTalentGraph(t)
	cfg := fgs.Config{R: 2, N: 4}
	s, err := fgs.Summarize(g, groups, fgs.NewNeighborCoverage(g, fgs.NeighborsIn, "recommend"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Covered) != 4 {
		t.Fatalf("covered = %d", len(s.Covered))
	}
	rep := fgs.Verify(g, groups, fgs.NewNeighborCoverage(g, fgs.NeighborsIn, "recommend"), cfg, s, s.CL, 0)
	if !rep.OK() {
		t.Fatalf("verification failed: %s", rep)
	}
	if err := fgs.CoverageError(groups, s.Covered); err != 0 {
		t.Fatalf("coverage error = %v", err)
	}
}

func TestPublicSummarizeK(t *testing.T) {
	g, groups := buildTalentGraph(t)
	cfg := fgs.Config{R: 2, K: 3, N: 4}
	s, err := fgs.SummarizeK(g, groups, fgs.NewCardinality(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPatterns() > 3 {
		t.Fatalf("patterns = %d > k", s.NumPatterns())
	}
}

func TestPublicOnline(t *testing.T) {
	g, groups := buildTalentGraph(t)
	o := fgs.NewOnline(g, groups, fgs.NewCardinality(), fgs.Config{R: 2, N: 4, K: 6})
	for i := 0; i < groups.Len(); i++ {
		o.ProcessAll(groups.At(i).Members)
	}
	s, err := o.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Covered) == 0 {
		t.Fatal("online covered nothing")
	}
}

func TestPublicMaintainer(t *testing.T) {
	g, groups := buildTalentGraph(t)
	m, initial := fgs.NewMaintainer(g, groups, fgs.NewCardinality(), fgs.Config{R: 2, N: 4})
	if initial == nil || len(initial.Covered) == 0 {
		t.Fatal("no initial summary")
	}
	fresh := g.AddNode("user", nil)
	updated, err := m.ApplyBatch([]fgs.EdgeUpdate{{From: fresh, To: initial.Covered[0], Label: "recommend"}})
	if err != nil {
		t.Fatal(err)
	}
	missing, spurious := updated.Reconstruct(g)
	if missing.Len() != 0 || spurious.Len() != 0 {
		t.Fatal("maintained summary not lossless")
	}
}

func TestPublicGraphIO(t *testing.T) {
	g, _ := buildTalentGraph(t)
	var buf bytes.Buffer
	if err := fgs.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := fgs.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
}

func TestPublicMatcher(t *testing.T) {
	g, _ := buildTalentGraph(t)
	p := &fgs.Pattern{
		Focus: 0,
		Nodes: []fgs.PatternNode{
			{Label: "user", Literals: []fgs.Literal{{Key: "gender", Val: "f"}}},
			{Label: "user"},
		},
		Edges: []fgs.PatternEdge{{From: 1, To: 0, Label: "recommend"}},
	}
	m := fgs.NewMatcher(g, 0)
	got := m.Matches(p)
	if len(got) != 2 {
		t.Fatalf("female candidates = %d, want 2", len(got))
	}
}

func TestDatasetsPackage(t *testing.T) {
	lki := datasets.LKI(1, 1)
	if lki.NumNodes() == 0 {
		t.Fatal("empty LKI")
	}
	if datasets.DBP(1, 1).NumNodes() == 0 || datasets.Cite(1, 1).NumNodes() == 0 {
		t.Fatal("empty datasets")
	}
	groups, err := datasets.GroupsByAttr(lki, "user", "gender", []string{"male", "female"}, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if groups.Len() != 2 {
		t.Fatal("group induction failed")
	}
	pairs, err := datasets.GroupsByAttrPairs(lki, "user", "gender", []string{"male", "female"}, "degree", []string{"BS", "MS"}, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pairs.Len() != 4 {
		t.Fatal("pair group induction failed")
	}
}

func TestSpreadPackage(t *testing.T) {
	g := datasets.Pandemic(5, 1000)
	groups, err := datasets.GroupsByAttr(g, "citizen", "agegroup", []string{"young", "senior"}, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	seeds := spread.TopDegreeSeeds(g, 5)
	if len(seeds) != 5 {
		t.Fatal("seed selection failed")
	}
	model := spread.Model{P: 0.2, Trials: 5, Seed: 3}
	none := spread.SimulateImmunization(g, groups, seeds, []int{0, 0}, model)
	some := spread.SimulateImmunization(g, groups, seeds, []int{25, 25}, model)
	if some.Infected >= none.Infected {
		t.Fatalf("vaccination did not help: %.1f vs %.1f", some.Infected, none.Infected)
	}
	vax := spread.AllocateVaccines(g, groups, []int{10, 10}, fgs.NodeSet{})
	if vax.Len() != 20 {
		t.Fatalf("allocated %d", vax.Len())
	}
}

func TestCompressionRatioExported(t *testing.T) {
	g, groups := buildTalentGraph(t)
	s, err := fgs.Summarize(g, groups, fgs.NewCardinality(), fgs.Config{R: 2, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	structure := 0
	for _, pi := range s.Patterns {
		structure += pi.P.Size()
	}
	ratio := fgs.CompressionRatio(g, 2, s.Covered, structure, s.Corrections.Len())
	if ratio <= 0 || ratio > 1 {
		t.Fatalf("ratio = %v", ratio)
	}
}

func TestSummaryStringMentionsPatterns(t *testing.T) {
	g, groups := buildTalentGraph(t)
	s, err := fgs.Summarize(g, groups, fgs.NewCardinality(), fgs.Config{R: 2, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.String(), "2-summary") {
		t.Fatalf("String() = %q", s.String())
	}
}

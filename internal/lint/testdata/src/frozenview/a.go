// Fixture for frozenview: mutating methods on graphs reached from a read
// view (acquireRead, epochView, viewSet.pin, Graph.Snapshot) are flagged;
// clones, fresh graphs, and the allow-listed replay functions are not.
package frozenview

type Graph struct{ n int }

func (g *Graph) AddEdge(u, v int) error    { return nil }
func (g *Graph) RemoveEdge(u, v int) error { return nil }
func (g *Graph) AddNode(u int)             {}
func (g *Graph) Snapshot() *Graph          { return g }
func (g *Graph) Clone() *Graph             { return &Graph{n: g.n} }
func (g *Graph) Degree(u int) int          { return 0 }

type Interner struct{}

func (i *Interner) Intern(s string) int { return 0 }
func (i *Interner) Lookup(s string) int { return 0 }

type readCtx struct {
	g       *Graph
	names   *Interner
	release func()
}

type epochView struct {
	g    *Graph
	refs int
}

type viewSet struct{ cur *epochView }

func (vs *viewSet) pin() *epochView    { return vs.cur }
func (vs *viewSet) unpin(v *epochView) {}

type server struct {
	g     *Graph
	views *viewSet
}

func (s *server) acquireRead() readCtx { return readCtx{g: s.g} }

func mutateAcquired(s *server) {
	rc := s.acquireRead()
	defer rc.release()
	_ = rc.g.AddEdge(1, 2) // want `rc\.g\.AddEdge mutates a frozen read view`
}

func mutateViaLocal(s *server) {
	rc := s.acquireRead()
	g := rc.g
	g.AddNode(7) // want `g\.AddNode mutates a frozen read view`
}

func mutatePinned(s *server) {
	v := s.views.pin()
	defer s.views.unpin(v)
	_ = v.g.RemoveEdge(1, 2) // want `v\.g\.RemoveEdge mutates a frozen read view`
}

func mutateSnapshot(g *Graph) {
	snap := g.Snapshot()
	snap.AddNode(1) // want `snap\.AddNode mutates a frozen read view`
}

func mutateInterner(rc readCtx) {
	_ = rc.names.Intern("x") // want `rc\.names\.Intern mutates a frozen read view`
}

func mutateReplica(rep *epochView) {
	_ = rep.g.AddEdge(1, 2) // want `rep\.g\.AddEdge mutates a frozen read view`
}

func okReads(s *server) int {
	rc := s.acquireRead()
	_ = rc.names.Lookup("x") // ok: Lookup is not in the mutator set
	return rc.g.Degree(3)    // ok: reads never mutate
}

func okClone(s *server) {
	rc := s.acquireRead()
	mine := rc.g.Clone()
	mine.AddNode(1) // ok: a deep copy is the caller's own graph
	_ = mine.AddEdge(1, 2)
}

func okFreshGraph() *Graph {
	g := &Graph{}
	g.AddNode(1) // ok: never published
	return g
}

// catchUp is the writer's delta replay: it mutates a pinned, unpublished
// replica by design and is allow-listed by identity.
func (vs *viewSet) catchUp(rep *epochView) {
	_ = rep.g.AddEdge(1, 2) // ok: sanctioned replay
	_ = rep.g.RemoveEdge(3, 4)
}

// newViewSet seeds the first epoch from a snapshot before anything is
// published; also allow-listed.
func newViewSet(g *Graph) *viewSet {
	snap := g.Snapshot()
	snap.AddNode(0) // ok: construction-time, nothing published yet
	return &viewSet{cur: &epochView{g: snap}}
}

func allowedEscapeHatch(s *server) {
	rc := s.acquireRead()
	//lint:allow frozenview migration shim: epoch 0 is private to this worker
	_ = rc.g.AddEdge(9, 9)
}

// Summary-as-view workflow: compute a fair summary once, export it as JSON
// (as a service would persist a materialized view), reload it later, and
// answer pattern queries over the view — property (3) of the paper's
// problem statement.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	fgs "github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/datasets"
)

func main() {
	g := datasets.LKI(7, 1)
	groups, err := datasets.GroupsByAttr(g, "user", "gender", []string{"male", "female"}, 40, 60)
	if err != nil {
		log.Fatal(err)
	}

	// Build and "persist" the summary.
	summary, err := fgs.Summarize(g, groups, fgs.NewNeighborCoverage(g, fgs.NeighborsIn, "corev"), fgs.Config{R: 2, N: 100})
	if err != nil {
		log.Fatal(err)
	}
	var store bytes.Buffer
	if err := fgs.WriteSummaryJSON(&store, summary, g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted summary: %d bytes JSON, %d candidates, %d patterns\n",
		store.Len(), len(summary.Covered), summary.NumPatterns())

	// Later: reload the view and serve queries from it.
	view, err := fgs.ReadSummaryJSON(&store, g, 0)
	if err != nil {
		log.Fatal(err)
	}
	missing, spurious := view.Reconstruct(g)
	fmt.Printf("reloaded view lossless: %v\n", missing.Len() == 0 && spurious.Len() == 0)

	queries := map[string]string{
		"Internet candidates": "n 0 user industry=Internet\nn 1 user\ne 1 0 corev\n",
		"PhD candidates":      "n 0 user degree=PhD\n",
		"Finance candidates":  "n 0 user industry=Finance\n",
	}
	names := make([]string, 0, len(queries))
	for name := range queries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p, err := fgs.ParsePatternString(queries[name])
		if err != nil {
			log.Fatal(err)
		}
		answers := fgs.QueryView(g, view, p, 0)
		fmt.Printf("  %-20s -> %d representative answers\n", name, len(answers))
	}
}

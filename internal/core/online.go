package core

import (
	"fmt"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/pattern"
	"github.com/cwru-db/fgs/internal/submod"
)

// Online implements Online-APXFGS (Section VI, Fig. 5): it consumes the
// group nodes as a stream, interleaving
//
//   - streaming fair submodular selection (accept / swap / reject with
//     per-group buckets, the ¼-approximation machinery of submod.Streamer),
//     and
//   - localized pattern maintenance (procedure UpdateP): whenever a node
//     enters V_p, candidates are mined from that node's E_v^r only, then the
//     pattern set is greedily extended while |P| < k, or repaired by the
//     best-in / worst-out swap that keeps V_p covered.
//
// After the stream, PostSelect tops up groups below their lower bounds from
// the buckets (Fig. 5 lines 11-12). The combined guarantee is the
// (¼, ln n + θ)-approximation of Theorem 6.
type Online struct {
	g      *graph.Graph
	groups *submod.Groups
	cfg    Config
	er     *mining.ErCache
	sel    *submod.Streamer

	patterns []PatternInfo
	util     submod.Utility

	run *runObs
	// candidates and windows accumulate across Process calls; the phase
	// timings themselves live in the span tree (see Stats).
	candidates int
	windows    int
}

// NewOnline prepares a streaming summarizer. The utility's state is owned by
// the selector from now on. cfg.K > 0 bounds the pattern set; K = 0 leaves
// it unbounded.
func NewOnline(g *graph.Graph, groups *submod.Groups, util submod.Utility, cfg Config) *Online {
	cfg = cfg.withDefaults()
	run := startRun(cfg.Obs, "online")
	o := &Online{
		g:      g,
		groups: groups,
		cfg:    cfg,
		er:     mining.NewErCache(g, cfg.R),
		sel:    submod.NewStreamer(groups, util, cfg.N),
		util:   util,
		run:    run,
	}
	run.register(o.er)
	run.register(o.sel)
	return o
}

// Process consumes one arriving group node (one stream window).
func (o *Online) Process(v graph.NodeID) {
	o.windows++
	sp := o.run.phase(PhaseSelect)
	res := o.sel.Process(v)
	sp.End()
	switch res.Decision {
	case submod.Accepted:
		o.updateP(v)
	case submod.Swapped:
		o.pruneAfterEviction()
		o.updateP(v)
	}
}

// ProcessAll streams every node of the slice in order.
func (o *Online) ProcessAll(nodes []graph.NodeID) {
	for _, v := range nodes {
		o.Process(v)
	}
}

// updateP implements procedure UpdateP (Fig. 6) for one newly selected node.
func (o *Online) updateP(v graph.NodeID) {
	sp := o.run.phase(PhaseMine)
	mcfg := o.cfg.Mining
	mcfg.MaxPatterns = o.cfg.PerNodePatterns
	// Localized mining from E_v^r; coverage is evaluated over the current
	// selection (the summary describes exactly the selected nodes), but the
	// edge/C_P scoring stays local to v — the paper's per-node cost bound
	// O(|E_v^r| + N_v·T_I). Finish's global re-scoring repairs the totals.
	mcfg.ScoreAnchorsOnly = true
	cands := mining.SumGen(o.g, []graph.NodeID{v}, o.sel.Selected(), mcfg, o.er)
	o.candidates += len(cands)
	sp.End()

	sp = o.run.phase(PhaseSummarize)
	defer sp.End()

	if o.coveredSet().Has(v) {
		return // an existing pattern already covers the newcomer
	}

	// While below the pattern budget, greedily add best-ratio candidates
	// covering v (Fig. 6 lines 2-5).
	if o.cfg.K == 0 || len(o.patterns) < o.cfg.K {
		best := o.bestFeasible(cands, v)
		if best != nil {
			o.patterns = append(o.patterns, *best)
			return
		}
	}
	if o.cfg.K == 0 {
		return // nothing feasible covers v
	}

	// Budget exhausted: swap in the incoming candidate P⁺ with the best
	// selected-cover/cost ratio for the outgoing pattern P⁻ with the worst,
	// among pairs whose swap keeps every selected node covered and the
	// coverage feasible (Fig. 6 lines 6-15). Feasibility uses a coverage
	// reference count so each pair costs O(|P⁻ cover| + |P⁺ cover|).
	selected := graph.NodeSetOf(o.sel.Selected())
	refs := make(map[graph.NodeID]int)
	for _, pi := range o.patterns {
		for _, u := range pi.Covered {
			refs[u]++
		}
	}
	coveredTotal := len(refs)

	var bestIn *mining.Candidate
	worstOut := -1
	for _, cand := range cands {
		covers := false
		for _, u := range cand.Covered {
			if u == v {
				covers = true
				break
			}
		}
		if !covers {
			continue
		}
		candSet := graph.NodeSetOf(cand.Covered)
		gain := 0
		for _, u := range cand.Covered {
			if refs[u] == 0 {
				gain++
			}
		}
		for pi := range o.patterns {
			// Nodes only patterns[pi] covers are lost unless cand re-covers
			// them; losing a selected node disqualifies the swap.
			loss := 0
			feasible := true
			for _, u := range o.patterns[pi].Covered {
				if refs[u] == 1 && !candSet.Has(u) {
					if selected.Has(u) {
						feasible = false
						break
					}
					loss++
				}
			}
			if !feasible || coveredTotal-loss+gain > o.cfg.N {
				continue
			}
			replace := bestIn == nil
			if !replace {
				inBetter := betterGain(countIn(cand.Covered, selected), cand.CP, countIn(bestIn.Covered, selected), bestIn.CP)
				sameIn := cand == bestIn
				outWorse := worseRatio(o.patterns[pi], o.patterns[worstOut], selected)
				replace = inBetter || (sameIn && outWorse)
			}
			if replace {
				bestIn = cand
				worstOut = pi
			}
		}
	}
	if bestIn != nil {
		o.patterns[worstOut] = infoOf(o.g, bestIn)
	}
}

// bestFeasible returns the candidate covering v with the best ratio gain
// that keeps the pattern-set coverage feasible, or nil.
func (o *Online) bestFeasible(cands []*mining.Candidate, v graph.NodeID) *PatternInfo {
	cs := newCoverState(o.cfg.N)
	for _, pi := range o.patterns {
		cs.add(&mining.Candidate{Covered: pi.Covered})
	}
	selected := graph.NodeSetOf(o.sel.Selected())
	var best *mining.Candidate
	bestNew := 0
	for _, cand := range cands {
		covers := false
		for _, u := range cand.Covered {
			if u == v {
				covers = true
				break
			}
		}
		if !covers || !cs.extendable(cand) {
			continue
		}
		n := countIn(cand.Covered, selected)
		if best == nil || betterGain(n, cand.CP, bestNew, best.CP) {
			best = cand
			bestNew = n
		}
	}
	if best == nil {
		return nil
	}
	pi := infoOf(o.g, best)
	return &pi
}

// worseRatio reports whether pattern a has a strictly worse selected-cover /
// cost ratio than b (the eviction preference of Fig. 6 line 14).
func worseRatio(a, b PatternInfo, selected graph.NodeSet) bool {
	return betterGain(countIn(b.Covered, selected), b.CP, countIn(a.Covered, selected), a.CP)
}

func countIn(nodes []graph.NodeID, set graph.NodeSet) int {
	n := 0
	for _, v := range nodes {
		if set.Has(v) {
			n++
		}
	}
	return n
}

// pruneAfterEviction drops patterns that no longer cover any selected node.
func (o *Online) pruneAfterEviction() {
	selected := graph.NodeSetOf(o.sel.Selected())
	kept := o.patterns[:0]
	for _, pi := range o.patterns {
		if countIn(pi.Covered, selected) > 0 {
			kept = append(kept, pi)
		}
	}
	o.patterns = kept
}

// coveredSet returns the union cover of the current pattern set.
func (o *Online) coveredSet() graph.NodeSet {
	s := graph.NewNodeSet(0)
	for _, pi := range o.patterns {
		for _, v := range pi.Covered {
			s.Add(v)
		}
	}
	return s
}

// Finish runs post-processing (PostSelect for deficient groups, plus pattern
// updates for the nodes it adds) and returns the final r-summary.
func (o *Online) Finish() (*Summary, error) {
	sp := o.run.phase(PhaseSelect)
	added := o.sel.PostSelect()
	sp.End()
	for _, v := range added {
		o.updateP(v)
	}
	// Any selected node still uncovered (possible when per-node mining was
	// capped) gets one more localized attempt.
	covered := o.coveredSet()
	var uncovered []graph.NodeID
	for _, v := range o.sel.Selected() {
		if !covered.Has(v) {
			o.updateP(v)
		}
	}
	covered = o.coveredSet()
	for _, v := range o.sel.Selected() {
		if !covered.Has(v) {
			uncovered = append(uncovered, v)
		}
	}
	if o.cfg.K > 0 && len(o.patterns) > o.cfg.K {
		return nil, fmt.Errorf("core: online pattern budget violated: %d > %d", len(o.patterns), o.cfg.K)
	}
	o.rescoreAll()
	o.run.reg.Add("fgs_online_windows_total", "Stream windows processed by Online-APXFGS.", nil, int64(o.windows))
	return buildSummary(o.cfg, o.patterns, o.er, o.util, uncovered, o.run.finish(o.candidates, o.windows)), nil
}

// rescoreAll re-evaluates every pattern against the final selection: covers
// recorded during the stream were anchored to earlier, smaller selections
// and may be stale after swaps. Patterns that no longer cover any selected
// node are dropped.
func (o *Online) rescoreAll() {
	selected := o.sel.Selected()
	m := pattern.NewMatcher(o.g, o.cfg.Mining.EmbedCap)
	kept := o.patterns[:0]
	for _, pi := range o.patterns {
		covered := sortNodes(m.CoverAmong(pi.P, selected))
		if len(covered) == 0 {
			continue
		}
		edges := graph.NewEdgeBits(o.g.EdgeIDBound())
		for _, v := range covered {
			if es, ok := m.CoveredEdgeBitsAt(pi.P, v); ok {
				edges.Union(es)
			}
		}
		cp := o.er.UnionOf(covered).AndNotCount(edges)
		kept = append(kept, PatternInfo{P: pi.P, Covered: covered, CoveredEdges: o.g.EdgeSetOf(edges), CP: cp})
	}
	o.patterns = kept
}

// Stats exposes the accumulated phase timings so far, derived from the span
// tree (safe to call mid-stream: only completed phase spans are counted).
func (o *Online) Stats() Stats { return o.run.stats(o.candidates, o.windows) }

// Selected returns the current streaming selection.
func (o *Online) Selected() []graph.NodeID { return o.sel.Selected() }

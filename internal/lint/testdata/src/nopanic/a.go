// Fixture for the nopanic analyzer in a library (non-main) package.
package nopanic

import (
	"errors"
	"fmt"
	"log"
	"os"
)

func panics() {
	panic("boom") // want `panic in library package`
}

func fatals() {
	log.Fatal("boom") // want `log\.Fatal in library package`
}

func fatalfs(err error) {
	log.Fatalf("boom: %v", err) // want `log\.Fatalf in library package`
}

func exits() {
	os.Exit(1) // want `os\.Exit in library package`
}

func returnsError() error {
	return errors.New("boom") // ok: errors are the contract
}

func wrapsError(err error) error {
	return fmt.Errorf("context: %w", err) // ok
}

func vetted(ok bool) {
	if !ok {
		//lint:allow nopanic vetted invariant check — corruption must not be survivable
		panic("corrupted store")
	}
}

type logger struct{}

func (logger) Fatal(v ...any) {}

func notTheLogPackage(l logger) {
	l.Fatal("x") // ok: same-named method on a non-log type
}

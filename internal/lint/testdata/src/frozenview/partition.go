// Fixture for frozenview's focus-region coverage: shards handed out by
// Partition.Shard (or a Regions facade) and the compacted graphs behind
// Shard.Graph are built once per epoch and shared by every request, so
// mutating them is flagged like mutating a pinned view. Graph() on other
// receivers stays writable, and Clone() is still a barrier.
package frozenview

type Shard struct {
	g     *Graph
	owned []int
}

func (s *Shard) Graph() *Graph { return s.g }
func (s *Shard) Owned() []int  { return s.owned }

type Partition struct{ shards []*Shard }

func (p *Partition) Shard(i int) *Shard { return p.shards[i] }

type regions struct{ part *Partition }

func (r *regions) Shard(i int) *Shard { return r.part.Shard(i) }

type matcher struct{ g *Graph }

func (m *matcher) Graph() *Graph { return m.g }

func mutateShardGraph(p *Partition) {
	sg := p.Shard(0).Graph()
	_ = sg.AddEdge(1, 2) // want `sg\.AddEdge mutates a frozen read view`
}

func mutateViaRegions(r *regions) {
	sh := r.Shard(1)
	sh.Graph().AddNode(3) // want `sh\.Graph\(\)\.AddNode mutates a frozen read view`
}

func okShardReads(p *Partition) int {
	sh := p.Shard(0)
	_ = sh.Owned() // ok: reads never mutate
	return sh.Graph().Degree(3)
}

func okShardClone(p *Partition) {
	mine := p.Shard(0).Graph().Clone()
	mine.AddNode(1) // ok: a deep copy is the caller's own graph
}

func okMatcherGraph(m *matcher) {
	// Graph() is only frozen on a Shard receiver; a matcher wraps whatever
	// graph its caller owns.
	m.Graph().AddNode(5)
}

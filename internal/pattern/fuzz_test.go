package pattern

import (
	"strings"
	"testing"
)

// FuzzParsePatternString checks the text-format round trip: any input that
// Parse accepts must Format into a string that parses back to the same
// pattern, and Format must be a fixed point (formatting the reparse changes
// nothing). This pins the wire format the server's /v1/view endpoint and the
// workload files rely on.
func FuzzParsePatternString(f *testing.F) {
	seeds := []string{
		// The documented examples.
		"n 0 user\nf 0\n",
		"n 0 user industry=Internet\nn 1 user\ne 1 0 corev\nf 0\n",
		"# comment\nn 0 user exp=5 industry=Internet\nn 1 user\nn 2 user\ne 1 0 corev\ne 2 0 corev\nf 0\n",
		// Focus elsewhere, default focus, blank lines, literal edge cases.
		"n 0 user\nn 1 org\ne 0 1 employed\nf 1\n",
		"n 0 user\n",
		"\n\nn 0 user\n\nf 0\n",
		"n 0 user a=b=c\nf 0\n",
		"n 0 x=y\nf 0\n",
		// Malformed inputs the parser must reject without panicking.
		"",
		"n 1 user\n",
		"n 0\n",
		"e 0 1 corev\n",
		"n 0 user\ne 0 5 corev\nf 0\n",
		"n 0 user\nf 7\n",
		"n 0 user\nq whatever\n",
		"n 0 user =bad\nf 0\n",
		"n -1 user\n",
		"n 0 user\nn 0 user\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseString(s)
		if err != nil {
			return // rejected inputs just must not panic
		}
		var b strings.Builder
		if err := Format(&b, p); err != nil {
			t.Fatalf("Format of accepted pattern %q: %v", s, err)
		}
		formatted := b.String()
		p2, err := ParseString(formatted)
		if err != nil {
			t.Fatalf("reparse of Format output %q (from %q): %v", formatted, s, err)
		}
		var b2 strings.Builder
		if err := Format(&b2, p2); err != nil {
			t.Fatal(err)
		}
		if formatted != b2.String() {
			t.Errorf("Format not a fixed point:\nfirst:  %q\nsecond: %q", formatted, b2.String())
		}
	})
}

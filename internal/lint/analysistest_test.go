package lint

// runFixture is fgslint's stand-in for golang.org/x/tools'
// analysistest.Run: it loads fixture packages from testdata/src, runs one
// analyzer, and compares the diagnostics against `// want "regexp"`
// comments in the fixture sources. Every want must be matched by exactly one
// diagnostic on its line, and every diagnostic must be expected.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var (
	wantRe  = regexp.MustCompile(`//\s*want\s+(.+)$`)
	quoteRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")
)

type want struct {
	re      *regexp.Regexp
	matched bool
}

// runFixture loads each dir (relative to testdata/src) as a package and
// checks analyzer a's findings against the fixtures' want comments.
func runFixture(t *testing.T, a *Analyzer, dirs ...string) {
	t.Helper()
	runFixtures(t, []*Analyzer{a}, dirs...)
}

// runFixtures is runFixture over a joint analyzer set, for fixtures whose
// wants span analyzers (e.g. lockdiscipline copy checks + pairdiscipline
// pairing on the same sources).
func runFixtures(t *testing.T, as []*Analyzer, dirs ...string) {
	t.Helper()
	root := filepath.Join("testdata", "src")
	loader, err := NewTreeLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash(d)))
		if err != nil {
			t.Fatalf("loading fixture %s: %v", d, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := RunAnalyzers(pkgs, as)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, pkgs)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	keys := make([]string, 0, len(wants))
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.re)
			}
		}
	}
}

// collectWants scans the fixture sources for want comments, keyed by
// "filename:line".
func collectWants(t *testing.T, pkgs []*Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			name := pkg.Fset.File(f.Pos()).Name()
			if seen[name] {
				continue
			}
			seen[name] = true
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				key := fmt.Sprintf("%s:%d", name, i+1)
				for _, q := range quoteRe.FindAllStringSubmatch(m[1], -1) {
					expr := q[1]
					if q[2] != "" {
						expr = q[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, expr, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// Fixture for the lockdiscipline analyzer: the shard-cache shapes from
// internal/mining/ercache.go, both correct and broken.
package lockdiscipline

import "sync"

type Shard struct {
	mu sync.Mutex
	m  map[int]int
}

type Cache struct {
	shards [4]Shard
}

func (c *Cache) get(k int) int { // ok: pointer receiver, defer unlock
	s := &c.shards[k%4]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

func (c Cache) badReceiver() {} // want `receiver passes lock-bearing`

func badParam(s Shard) {} // want `parameter passes lock-bearing`

func okPointerParam(s *Shard) {} // ok: shared, not copied

func badRange(c *Cache) int {
	n := 0
	for _, s := range c.shards { // want `range copies lock-bearing`
		n += len(s.m)
	}
	return n
}

func okIndexRange(c *Cache) int {
	n := 0
	for i := range c.shards { // ok: element accessed through &c.shards[i]
		s := &c.shards[i]
		n += len(s.m)
	}
	return n
}

func badCopy(c *Cache) int {
	s := c.shards[0] // want `assignment copies lock-bearing`
	return len(s.m)
}

func freshValue() int {
	s := Shard{m: map[int]int{}} // ok: composite literal, lock not yet in use
	return len(s.m)
}

func badLock(c *Cache) {
	c.shards[0].mu.Lock() // want `c\.shards\[0\]\.mu\.Lock\(\) without a matching`
	_ = c.shards[0].m
}

func unlockOnEveryBranch(c *Cache, cond bool) { // ok: direct unlock on both paths
	c.shards[1].mu.Lock()
	if cond {
		c.shards[1].mu.Unlock()
		return
	}
	c.shards[1].mu.Unlock()
}

func lockInsideClosure(c *Cache) func() int { // ok: pair lives in the same closure
	return func() int {
		c.shards[2].mu.Lock()
		defer c.shards[2].mu.Unlock()
		return len(c.shards[2].m)
	}
}

type rw struct {
	mu sync.RWMutex
	v  int
}

func (r *rw) read() int { // ok: RLock paired with RUnlock
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

func (r *rw) badRead() int {
	r.mu.RLock() // want `r\.mu\.RLock\(\) without a matching`
	return r.v
}

func (r *rw) mismatchedRead() int {
	r.mu.RLock() // want `r\.mu\.RLock\(\) without a matching r\.mu\.RUnlock`
	defer r.mu.Unlock()
	return r.v
}

func allowedCrossFunc(r *rw) {
	//lint:allow lockdiscipline,pairdiscipline handed off: releaseRW is the documented pair
	r.mu.Lock()
}

func releaseRW(r *rw) {
	r.mu.Unlock()
}

type notALock struct{}

func (notALock) Lock() {}

func sameNameDifferentType(n notALock) {
	n.Lock() // ok: not a sync type
}

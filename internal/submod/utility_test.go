package submod

import (
	"math/rand"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

// socialFixture builds a small co-review network with ratings.
func socialFixture(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	// 0..3 candidates with ratings; 4..9 reviewers.
	g.AddNode("user", map[string]string{"rating": "4.5"})
	g.AddNode("user", map[string]string{"rating": "3.0"})
	g.AddNode("user", map[string]string{"rating": "bogus"})
	g.AddNode("user", nil)
	for i := 0; i < 6; i++ {
		g.AddNode("user", nil)
	}
	edges := [][2]graph.NodeID{{4, 0}, {5, 0}, {6, 0}, {5, 1}, {6, 1}, {7, 2}, {8, 3}, {9, 3}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1], "corev"); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestRatingSum(t *testing.T) {
	g := socialFixture(t)
	u := NewRatingSum(g, "rating")
	if got := u.Marginal(0); got != 4.5 {
		t.Fatalf("Marginal(0) = %v, want 4.5", got)
	}
	if got := u.Marginal(2); got != 0 { // unparsable value rates 0
		t.Fatalf("Marginal(2) = %v, want 0", got)
	}
	if got := u.Marginal(3); got != 0 { // missing attribute rates 0
		t.Fatalf("Marginal(3) = %v, want 0", got)
	}
	u.Add(0)
	u.Add(1)
	if u.Value() != 7.5 {
		t.Fatalf("Value = %v, want 7.5", u.Value())
	}
	if u.Marginal(0) != 0 {
		t.Fatal("Marginal of selected node should be 0")
	}
	u.Add(0) // double add is a no-op
	if u.Value() != 7.5 {
		t.Fatal("double Add changed value")
	}
	u.Remove(1)
	if u.Value() != 4.5 {
		t.Fatalf("after Remove Value = %v, want 4.5", u.Value())
	}
	u.Remove(1) // double remove is a no-op
	if u.Value() != 4.5 {
		t.Fatal("double Remove changed value")
	}
	u.Reset()
	if u.Value() != 0 {
		t.Fatal("Reset did not zero value")
	}
}

func TestRatingSumUnknownKey(t *testing.T) {
	g := socialFixture(t)
	u := NewRatingSum(g, "doesnotexist")
	if u.Marginal(0) != 0 {
		t.Fatal("unknown key should rate all nodes 0")
	}
}

func TestNeighborCoverageInMode(t *testing.T) {
	g := socialFixture(t)
	u := NewNeighborCoverage(g, NeighborsIn, "corev")
	// N(0) = {4,5,6}, N(1) = {5,6}: union 3, overlap 2.
	if got := u.Marginal(0); got != 3 {
		t.Fatalf("Marginal(0) = %v, want 3", got)
	}
	u.Add(0)
	if got := u.Marginal(1); got != 0 { // {5,6} already covered
		t.Fatalf("Marginal(1) after adding 0 = %v, want 0", got)
	}
	u.Add(1)
	if u.Value() != 3 {
		t.Fatalf("Value = %v, want 3", u.Value())
	}
	u.Remove(0)
	// Only node 1 remains: covers {5,6}.
	if u.Value() != 2 {
		t.Fatalf("after removing 0 Value = %v, want 2", u.Value())
	}
}

func TestNeighborCoverageModes(t *testing.T) {
	g := graph.New()
	a := g.AddNode("x", nil)
	b := g.AddNode("x", nil)
	c := g.AddNode("x", nil)
	if err := g.AddEdge(a, b, "e"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(c, a, "e"); err != nil {
		t.Fatal(err)
	}
	in := NewNeighborCoverage(g, NeighborsIn, "")
	out := NewNeighborCoverage(g, NeighborsOut, "")
	both := NewNeighborCoverage(g, NeighborsBoth, "")
	if in.Marginal(a) != 1 { // c->a
		t.Errorf("in-mode Marginal(a) = %v", in.Marginal(a))
	}
	if out.Marginal(a) != 1 { // a->b
		t.Errorf("out-mode Marginal(a) = %v", out.Marginal(a))
	}
	if both.Marginal(a) != 2 {
		t.Errorf("both-mode Marginal(a) = %v", both.Marginal(a))
	}
}

func TestNeighborCoverageUnknownLabel(t *testing.T) {
	g := socialFixture(t)
	u := NewNeighborCoverage(g, NeighborsIn, "nolabel")
	if u.Marginal(0) != 0 {
		t.Fatal("unknown edge label should yield zero coverage")
	}
	u.Add(0)
	if u.Value() != 0 {
		t.Fatal("unknown edge label should keep value at 0")
	}
}

func TestCardinality(t *testing.T) {
	u := NewCardinality()
	if u.Marginal(1) != 1 {
		t.Fatal("Marginal of new node should be 1")
	}
	u.Add(1)
	u.Add(2)
	if u.Value() != 2 || u.Marginal(1) != 0 {
		t.Fatalf("Value=%v Marginal(1)=%v", u.Value(), u.Marginal(1))
	}
	u.Remove(1)
	if u.Value() != 1 {
		t.Fatal("Remove failed")
	}
}

// Property: the built-in utilities are monotone and submodular, and Marginal
// is consistent with Add/Value. Checked on random graphs and random sets.
func TestUtilityAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomSocialGraph(rng, 30, 80)
	utils := map[string]Utility{
		"rating":   NewRatingSum(g, "rating"),
		"coverage": NewNeighborCoverage(g, NeighborsIn, ""),
		"card":     NewCardinality(),
	}
	for name, u := range utils {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 30; trial++ {
				// Random nested sets A ⊆ B and a node v ∉ B.
				perm := rng.Perm(g.NumNodes())
				aLen := rng.Intn(10)
				bLen := aLen + rng.Intn(10)
				v := graph.NodeID(perm[bLen])
				setB := make([]graph.NodeID, bLen)
				for i := 0; i < bLen; i++ {
					setB[i] = graph.NodeID(perm[i])
				}
				setA := setB[:aLen]

				// Marginal consistency: F(A∪v) - F(A) == Marginal(v) at A.
				u.Reset()
				for _, x := range setA {
					u.Add(x)
				}
				fa := u.Value()
				mA := u.Marginal(v)
				u.Add(v)
				if diff := u.Value() - fa; !approxEq(diff, mA) {
					t.Fatalf("trial %d: Marginal inconsistent: %v vs %v", trial, mA, diff)
				}

				// Monotonicity: marginals are never negative.
				if mA < 0 {
					t.Fatalf("trial %d: negative marginal %v", trial, mA)
				}

				// Submodularity: gain at A >= gain at B ⊇ A.
				u.Reset()
				for _, x := range setB {
					u.Add(x)
				}
				mB := u.Marginal(v)
				if mB > mA+1e-9 {
					t.Fatalf("trial %d: submodularity violated: gain at A=%v < gain at B=%v", trial, mA, mB)
				}

				// Remove inverts Add.
				u.Reset()
				for _, x := range setA {
					u.Add(x)
				}
				before := u.Value()
				u.Add(v)
				u.Remove(v)
				if !approxEq(u.Value(), before) {
					t.Fatalf("trial %d: Add/Remove not inverse: %v vs %v", trial, before, u.Value())
				}
			}
		})
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// randomSocialGraph builds a random graph with ratings for the axioms test.
func randomSocialGraph(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		var attrs map[string]string
		if rng.Intn(2) == 0 {
			attrs = map[string]string{"rating": []string{"1", "2.5", "4", "5"}[rng.Intn(4)]}
		}
		g.AddNode("user", attrs)
	}
	for i := 0; i < m; i++ {
		_ = g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), "corev")
	}
	return g
}

func TestEvalIsStateless(t *testing.T) {
	g := socialFixture(t)
	u := NewNeighborCoverage(g, NeighborsIn, "corev")
	u.Add(3) // dirty state
	got := Eval(u, []graph.NodeID{0, 1})
	if got != 3 {
		t.Fatalf("Eval = %v, want 3", got)
	}
	if u.Value() != 0 {
		t.Fatal("Eval should leave the utility reset")
	}
}

package lint

// cfg.go builds a lightweight intraprocedural control-flow graph over a
// function body (DESIGN.md §12). It is the substrate for the path-sensitive
// analyzers (pairdiscipline's must-pair dataflow, leak-path witnesses): each
// basic block carries its statements in execution order plus its successor
// edges, and conditional blocks remember their branch expression so a
// dataflow client can refine facts per edge (succs[0] is the true edge,
// succs[1] the false edge).
//
// The builder covers the full statement grammar the repository uses:
// if/else chains, for (all three clauses), range, switch (tagged and
// tagless, with fallthrough), type switch, select, labeled statements,
// break/continue (labeled and bare), goto, defer, go, and return. Calls that
// provably never return (builtin panic, os.Exit, log.Fatal*, runtime.Goexit)
// terminate their block with an edge to a dedicated panicExit block, so leak
// analyses can treat normal returns and panics differently.
//
// Tagless switches are lowered to a cascade of two-way conditional blocks —
// the same shape as an if/else chain — so the per-edge refinement that
// understands `case err != nil:` works on both spellings.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// cfgBlock is one basic block: straight-line statements plus successors.
type cfgBlock struct {
	index int
	kind  string // "entry", "if.then", "for.body", ... (golden tests, messages)
	pos   token.Pos
	stmts []ast.Node
	succs []*cfgBlock

	// branchCond is the controlling expression when this block ends in a
	// two-way conditional: succs[0] is taken when it evaluates true,
	// succs[1] when false.
	branchCond ast.Expr
}

// funcCFG is the graph for one function body.
type funcCFG struct {
	blocks    []*cfgBlock
	entry     *cfgBlock
	exit      *cfgBlock // every return and the fall-off-the-end path
	panicExit *cfgBlock // paths ending in panic/os.Exit/log.Fatal
}

// cfgBuilder carries the construction state.
type cfgBuilder struct {
	cfg *funcCFG
	cur *cfgBlock

	// terminal reports whether a call never returns (panic, os.Exit, ...).
	// Injected so the golden tests can use a types-free matcher.
	terminal func(*ast.CallExpr) bool

	// breakTargets / continueTargets are innermost-last stacks; labeled
	// entries carry the label name, bare break/continue use the last entry.
	breakTargets    []branchTarget
	continueTargets []branchTarget

	// labelBlocks maps a label name to the block its statement starts, for
	// goto (created on demand so forward gotos resolve).
	labelBlocks map[string]*cfgBlock
}

type branchTarget struct {
	label string
	block *cfgBlock
}

// buildCFG constructs the CFG for body. terminal may be nil (no call is
// treated as terminating).
func buildCFG(body *ast.BlockStmt, terminal func(*ast.CallExpr) bool) *funcCFG {
	if terminal == nil {
		terminal = func(*ast.CallExpr) bool { return false }
	}
	b := &cfgBuilder{
		cfg:         &funcCFG{},
		terminal:    terminal,
		labelBlocks: make(map[string]*cfgBlock),
	}
	b.cfg.entry = b.newBlock("entry")
	b.cfg.entry.pos = body.Pos()
	b.cfg.exit = b.newBlock("exit")
	b.cfg.panicExit = b.newBlock("panic.exit")
	b.cur = b.cfg.entry
	b.stmtList(body.List)
	b.jump(b.cfg.exit) // fall off the end
	return b.cfg
}

func (b *cfgBuilder) newBlock(kind string) *cfgBlock {
	blk := &cfgBlock{index: len(b.cfg.blocks), kind: kind}
	b.cfg.blocks = append(b.cfg.blocks, blk)
	return blk
}

// jump adds an edge cur→to and leaves cur in a fresh unreachable block, so
// statements after a return/break still build without corrupting the graph.
func (b *cfgBuilder) jump(to *cfgBlock) {
	b.addEdge(b.cur, to)
	b.cur = b.newBlock("unreachable")
}

func (b *cfgBuilder) addEdge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur.pos == token.NoPos {
		b.cur.pos = n.Pos()
	}
	b.cur.stmts = append(b.cur.stmts, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// labelBlockFor returns (creating on demand) the block a label starts.
func (b *cfgBuilder) labelBlockFor(name string) *cfgBlock {
	if blk, ok := b.labelBlocks[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labelBlocks[name] = blk
	return blk
}

func (b *cfgBuilder) findTarget(stack []branchTarget, label string) *cfgBlock {
	if label == "" {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := unparen(s.X).(*ast.CallExpr); ok && b.terminal(call) {
			b.jump(b.cfg.panicExit)
		}

	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		b.add(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.exit)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		b.cur.branchCond = s.Cond
		condBlock := b.cur
		then := b.newBlock("if.then")
		b.addEdge(condBlock, then)
		done := b.newBlock("if.done")
		b.cur = then
		b.stmtList(s.Body.List)
		b.addEdge(b.cur, done)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.addEdge(condBlock, els)
			b.cur = els
			b.stmt(s.Else)
			b.addEdge(b.cur, done)
		} else {
			b.addEdge(condBlock, done)
		}
		b.cur = done

	case *ast.ForStmt:
		b.buildFor(s, "")

	case *ast.RangeStmt:
		b.buildRange(s, "")

	case *ast.SwitchStmt:
		b.buildSwitch(s, "")

	case *ast.TypeSwitchStmt:
		b.buildTypeSwitch(s, "")

	case *ast.SelectStmt:
		b.buildSelect(s, "")

	case *ast.LabeledStmt:
		lb := b.labelBlockFor(s.Label.Name)
		lb.pos = s.Pos()
		b.addEdge(b.cur, lb)
		b.cur = lb
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt:
			b.buildFor(inner, s.Label.Name)
		case *ast.RangeStmt:
			b.buildRange(inner, s.Label.Name)
		case *ast.SwitchStmt:
			b.buildSwitch(inner, s.Label.Name)
		case *ast.TypeSwitchStmt:
			b.buildTypeSwitch(inner, s.Label.Name)
		case *ast.SelectStmt:
			b.buildSelect(inner, s.Label.Name)
		default:
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(b.breakTargets, label); t != nil {
				b.jump(t)
			} else {
				b.jump(b.cfg.exit) // malformed input; stay safe
			}
		case token.CONTINUE:
			if t := b.findTarget(b.continueTargets, label); t != nil {
				b.jump(t)
			} else {
				b.jump(b.cfg.exit)
			}
		case token.GOTO:
			b.jump(b.labelBlockFor(label))
			// FALLTHROUGH is handled by buildSwitch, which looks ahead.
		}

	default:
		// Unknown statement kinds (future grammar) are treated as opaque
		// straight-line statements.
		b.add(s)
	}
}

// buildFor lowers a three-clause for statement. The head evaluates the
// condition each iteration; a nil condition makes the head single-successor
// (the loop is unbounded unless broken out of).
func (b *cfgBuilder) buildFor(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	head.pos = s.Pos()
	b.addEdge(b.cur, head)
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	contTarget := head
	var post *cfgBlock
	if s.Post != nil {
		post = b.newBlock("for.post")
		contTarget = post
	}
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		head.branchCond = s.Cond
		b.addEdge(head, body)
		b.addEdge(head, done)
	} else {
		b.addEdge(head, body)
	}
	b.pushLoop(label, done, contTarget)
	b.cur = body
	b.stmtList(s.Body.List)
	b.addEdge(b.cur, contTarget)
	b.popLoop()
	if post != nil {
		b.cur = post
		b.add(s.Post)
		b.addEdge(post, head)
	}
	b.cur = done
}

// buildRange lowers a range statement: the head is a two-way branch between
// "next element" and "exhausted".
func (b *cfgBuilder) buildRange(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	head.pos = s.Pos()
	head.stmts = append(head.stmts, s) // the range stmt itself: key/value binding
	b.addEdge(b.cur, head)
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.addEdge(head, body)
	b.addEdge(head, done)
	b.pushLoop(label, done, head)
	b.cur = body
	b.stmtList(s.Body.List)
	b.addEdge(b.cur, head)
	b.popLoop()
	b.cur = done
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *cfgBlock) {
	b.breakTargets = append(b.breakTargets, branchTarget{"", brk})
	b.continueTargets = append(b.continueTargets, branchTarget{"", cont})
	if label != "" {
		b.breakTargets = append(b.breakTargets, branchTarget{label, brk})
		b.continueTargets = append(b.continueTargets, branchTarget{label, cont})
	}
}

func (b *cfgBuilder) popLoop() {
	n := len(b.breakTargets) - 1
	if n >= 0 && b.breakTargets[n].label != "" {
		b.breakTargets = b.breakTargets[:n]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		n--
	}
	b.breakTargets = b.breakTargets[:n]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

func (b *cfgBuilder) pushBreak(label string, brk *cfgBlock) int {
	n := 1
	b.breakTargets = append(b.breakTargets, branchTarget{"", brk})
	if label != "" {
		b.breakTargets = append(b.breakTargets, branchTarget{label, brk})
		n = 2
	}
	return n
}

func (b *cfgBuilder) popBreak(n int) {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-n]
}

// buildSwitch lowers switch statements. A tagless switch becomes a cascade
// of conditional blocks (each case expression is a branch condition, so edge
// refinement sees `case err != nil:` exactly like `if err != nil`); a tagged
// switch becomes a multi-way branch from the head.
func (b *cfgBuilder) buildSwitch(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	done := b.newBlock("switch.done")
	n := b.pushBreak(label, done)
	defer b.popBreak(n)

	clauses := make([]*ast.CaseClause, 0, len(s.Body.List))
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	// Create the body block for every clause up front so fallthrough can
	// target the next one.
	bodies := make([]*cfgBlock, len(clauses))
	var defaultIdx = -1
	for i, c := range clauses {
		bodies[i] = b.newBlock("case.body")
		bodies[i].pos = c.Pos()
		if c.List == nil {
			defaultIdx = i
		}
	}

	if s.Tag == nil && allSingleExpr(clauses) {
		// Tagless cascade: cond1 ? body1 : (cond2 ? body2 : ... default/done)
		for i, c := range clauses {
			if i == defaultIdx {
				continue
			}
			b.add(c.List[0])
			b.cur.branchCond = c.List[0]
			b.addEdge(b.cur, bodies[i])
			next := b.newBlock("case.next")
			b.addEdge(b.cur, next)
			b.cur = next
		}
		if defaultIdx >= 0 {
			b.addEdge(b.cur, bodies[defaultIdx])
		} else {
			b.addEdge(b.cur, done)
		}
	} else {
		// Tagged (or multi-expression tagless) switch: multi-way branch.
		if s.Tag != nil {
			b.add(s.Tag)
		}
		head := b.cur
		for i := range clauses {
			b.addEdge(head, bodies[i])
		}
		if defaultIdx < 0 {
			b.addEdge(head, done)
		}
	}

	for i, c := range clauses {
		b.cur = bodies[i]
		b.buildClauseBody(c.Body, i, bodies, done)
	}
	b.cur = done
}

// buildClauseBody builds one case body, honoring a trailing fallthrough.
func (b *cfgBuilder) buildClauseBody(body []ast.Stmt, idx int, bodies []*cfgBlock, done *cfgBlock) {
	ft := false
	if n := len(body); n > 0 {
		if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			body = body[:n-1]
			ft = true
		}
	}
	b.stmtList(body)
	if ft && idx+1 < len(bodies) {
		b.addEdge(b.cur, bodies[idx+1])
		b.cur = b.newBlock("unreachable")
	} else {
		b.addEdge(b.cur, done)
	}
}

func allSingleExpr(clauses []*ast.CaseClause) bool {
	for _, c := range clauses {
		if c.List != nil && len(c.List) != 1 {
			return false
		}
	}
	return true
}

// buildTypeSwitch lowers a type switch as a multi-way branch.
func (b *cfgBuilder) buildTypeSwitch(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	head := b.cur
	done := b.newBlock("typeswitch.done")
	n := b.pushBreak(label, done)
	defer b.popBreak(n)
	hasDefault := false
	for _, raw := range s.Body.List {
		c := raw.(*ast.CaseClause)
		if c.List == nil {
			hasDefault = true
		}
		body := b.newBlock("case.body")
		body.pos = c.Pos()
		b.addEdge(head, body)
		b.cur = body
		b.stmtList(c.Body)
		b.addEdge(b.cur, done)
	}
	if !hasDefault {
		b.addEdge(head, done)
	}
	b.cur = done
}

// buildSelect lowers a select as a multi-way branch; each comm statement
// starts its clause body. A select with no default blocks until a case is
// ready, so there is no head→done edge without one.
func (b *cfgBuilder) buildSelect(s *ast.SelectStmt, label string) {
	head := b.cur
	done := b.newBlock("select.done")
	n := b.pushBreak(label, done)
	defer b.popBreak(n)
	for _, raw := range s.Body.List {
		c := raw.(*ast.CommClause)
		body := b.newBlock("select.body")
		body.pos = c.Pos()
		b.addEdge(head, body)
		b.cur = body
		if c.Comm != nil {
			b.stmt(c.Comm)
		}
		b.stmtList(c.Body)
		b.addEdge(b.cur, done)
	}
	if len(s.Body.List) == 0 {
		b.addEdge(head, done)
	}
	b.cur = done
}

// reachable returns the set of blocks reachable from entry, in index order.
func (c *funcCFG) reachable() []*cfgBlock {
	seen := make([]bool, len(c.blocks))
	var stack []*cfgBlock
	stack = append(stack, c.entry)
	seen[c.entry.index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.succs {
			if !seen[s.index] {
				seen[s.index] = true
				stack = append(stack, s)
			}
		}
	}
	var out []*cfgBlock
	for _, blk := range c.blocks {
		if seen[blk.index] {
			out = append(out, blk)
		}
	}
	return out
}

// dump renders the reachable graph in a stable text form for golden tests:
// one line per block, "index kind [stmtCount] -> succIndices", with
// unreachable scaffolding blocks elided and indices renumbered densely.
func (c *funcCFG) dump() string {
	blocks := c.reachable()
	renum := make(map[int]int, len(blocks))
	for i, blk := range blocks {
		renum[blk.index] = i
	}
	var sb strings.Builder
	for i, blk := range blocks {
		succs := make([]int, 0, len(blk.succs))
		for _, s := range blk.succs {
			if n, ok := renum[s.index]; ok {
				succs = append(succs, n)
			}
		}
		// Multi-way successor order is construction order (deterministic);
		// only sort duplicates out.
		succs = dedupInts(succs)
		fmt.Fprintf(&sb, "%d %s [%d] ->", i, blk.kind, len(blk.stmts))
		for _, s := range succs {
			fmt.Fprintf(&sb, " %d", s)
		}
		if i < len(blocks)-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func dedupInts(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetRand enforces the reproducibility half of the determinism contract
// inside the deterministic packages (core, mining, pattern, submod,
// experiments): no global math/rand functions (they draw from the
// process-seeded global source), no rand.New without an inline seeded
// source, and no time.Now (results must not depend on the wall clock).
//
// internal/gen is deliberately outside the list: it is the seeded dataset
// generator, and its *rand.Rand instances are constructed from explicit
// seeds. Wall-clock access goes through obs.Clock: internal/obs is the one
// package allowed to call time.Now (obs.System wraps it), so deterministic
// code takes a Clock and timing figures read it instead of the wall clock
// directly.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "flag global math/rand, unseeded rand.New, and time.Now in deterministic packages",
	Run:  runDetRand,
}

// detPackages are the import-path segments of the packages under the
// determinism contract.
var detPackages = []string{
	"internal/core",
	"internal/mining",
	"internal/pattern",
	"internal/submod",
	"internal/experiments",
	"internal/obs",
}

// obsPackage is the sanctioned wall-clock source: the rest of the contract
// (no global math/rand, no unseeded rand.New) applies to it like any other
// deterministic package, but its time.Now calls are the implementation of
// obs.System and are therefore permitted.
const obsPackage = "internal/obs"

func isObsPkg(pkgPath string) bool {
	return pkgPath == obsPackage || strings.HasSuffix(pkgPath, "/"+obsPackage)
}

// isDeterministicPkg matches pkgPath against detPackages on path-segment
// boundaries, so fixture trees like "detrand/internal/core" match while
// "internal/corev2" does not.
func isDeterministicPkg(pkgPath string) bool {
	for _, seg := range detPackages {
		if pkgPath == seg ||
			strings.HasSuffix(pkgPath, "/"+seg) ||
			strings.Contains(pkgPath, "/"+seg+"/") ||
			strings.HasPrefix(pkgPath, seg+"/") {
			return true
		}
	}
	return false
}

// seededConstructors are math/rand(/v2) functions that yield a source from
// an explicit seed; rand.New over one of these is reproducible.
var seededConstructors = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func runDetRand(pass *Pass) error {
	if !isDeterministicPkg(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true // method call (e.g. rng.Intn on a seeded *rand.Rand) — fine
			}
			pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			switch path := pkgName.Imported().Path(); path {
			case "math/rand", "math/rand/v2":
				checkRandCall(pass, call, sel, path)
			case "time":
				if sel.Sel.Name == "Now" && !isObsPkg(pass.PkgPath) {
					pass.Report(call.Pos(), "time.Now in deterministic package %s: results must not depend on the wall clock (read an obs.Clock instead)", pass.PkgPath)
				}
			}
			return true
		})
	}
	return nil
}

func checkRandCall(pass *Pass, call *ast.CallExpr, sel *ast.SelectorExpr, randPath string) {
	name := sel.Sel.Name
	switch {
	case seededConstructors[name] || name == "NewZipf":
		return // building a seeded source (or derived distribution) is the fix, not the bug
	case name == "New":
		// rand.New(src) is reproducible only when src is visibly seeded:
		// a direct rand.NewSource/NewPCG/NewChaCha8(...) call.
		if len(call.Args) >= 1 {
			if inner, ok := call.Args[0].(*ast.CallExpr); ok {
				if innerSel, ok := inner.Fun.(*ast.SelectorExpr); ok && seededConstructors[innerSel.Sel.Name] {
					return
				}
			}
		}
		pass.Report(call.Pos(), "rand.New without an inline seeded source: construct as rand.New(rand.NewSource(seed)) so runs are reproducible")
	default:
		pass.Report(call.Pos(), "global %s.%s draws from the process-seeded source: use a seeded *rand.Rand instead", randPkgName(randPath), name)
	}
}

func randPkgName(path string) string {
	if path == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}

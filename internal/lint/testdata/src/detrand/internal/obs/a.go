// Fixture for the detrand analyzer inside internal/obs: the package is under
// the determinism contract (global math/rand is still flagged) but is the
// sanctioned wall-clock source, so its time.Now calls are permitted.
package obs

import (
	"math/rand"
	"time"
)

func SystemNow() time.Time { return time.Now() } // ok: obs wraps the wall clock

func Jitter() int {
	return rand.Intn(10) // want `global rand\.Intn draws from the process-seeded source`
}

package submod

import (
	"math/rand"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

func benchSetup(b *testing.B, n int) (*graph.Graph, *Groups) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode("user", nil)
	}
	for i := 0; i < n*3; i++ {
		_ = g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), "corev")
	}
	var a, bm []graph.NodeID
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			a = append(a, graph.NodeID(i))
		} else {
			bm = append(bm, graph.NodeID(i))
		}
	}
	groups, err := NewGroups(
		Group{Name: "a", Members: a, Lower: 20, Upper: 40},
		Group{Name: "b", Members: bm, Lower: 20, Upper: 40},
	)
	if err != nil {
		b.Fatal(err)
	}
	return g, groups
}

func BenchmarkFairSelectLazy(b *testing.B) {
	g, groups := benchSetup(b, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FairSelect(groups, NewNeighborCoverage(g, NeighborsIn, "corev"), 60); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFairSelectPlain(b *testing.B) {
	g, groups := benchSetup(b, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FairSelectPlain(groups, NewNeighborCoverage(g, NeighborsIn, "corev"), 60); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamerProcess(b *testing.B) {
	g, groups := benchSetup(b, 4000)
	s := NewStreamer(groups, NewNeighborCoverage(g, NeighborsIn, "corev"), 60)
	all := groups.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(all[i%len(all)])
	}
}

func BenchmarkNeighborCoverageMarginal(b *testing.B) {
	g, groups := benchSetup(b, 4000)
	u := NewNeighborCoverage(g, NeighborsIn, "corev")
	all := groups.All()
	for i := 0; i < 50; i++ {
		u.Add(all[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Marginal(all[i%len(all)])
	}
}

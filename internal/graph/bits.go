package graph

import "math/bits"

// Dense bitsets over the graph's integer ID spaces — the flat hot-path
// representation behind EdgeSet/NodeSet (see DESIGN.md §9). A bitset stores
// membership in packed 64-bit words indexed by EdgeID/NodeID, so the inner
// loops of covered-edge accumulation, greedy cover, and C_P scoring touch
// one word per 64 IDs instead of one hash probe per element, and iteration
// is ascending-ID by construction — deterministic without a sort.
//
// The zero value of either type is an empty set; sets grow automatically on
// Add/Union, so a set built against a smaller graph stays valid (queries for
// IDs beyond the backing words report false). Bitsets are not safe for
// concurrent mutation; the pipelines share them read-only (ErCache contract).

// bitset is the shared untyped core of EdgeBits and NodeBits.
type bitset struct {
	words []uint64
	count int
}

// ensure grows the backing words so bit i is addressable.
func (b *bitset) ensure(i int) {
	w := i>>6 + 1
	if w <= len(b.words) {
		return
	}
	if w <= cap(b.words) {
		b.words = b.words[:w]
		return
	}
	nw := make([]uint64, w, max(w, 2*cap(b.words)))
	copy(nw, b.words)
	b.words = nw
}

func (b *bitset) add(i int) {
	b.ensure(i)
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.count++
	}
}

func (b *bitset) has(i int) bool {
	w := i >> 6
	return i >= 0 && w < len(b.words) && b.words[w]&(uint64(1)<<(uint(i)&63)) != 0
}

func (b *bitset) remove(i int) {
	w := i >> 6
	if i < 0 || w >= len(b.words) {
		return
	}
	m := uint64(1) << (uint(i) & 63)
	if b.words[w]&m != 0 {
		b.words[w] &^= m
		b.count--
	}
}

// union folds other into b, maintaining the cached count.
func (b *bitset) union(other *bitset) {
	if other.count == 0 {
		return
	}
	if len(other.words) > len(b.words) {
		b.ensure(len(other.words)<<6 - 1)
	}
	for w, ow := range other.words {
		if ow == 0 {
			continue
		}
		old := b.words[w]
		nw := old | ow
		if nw != old {
			b.count += bits.OnesCount64(nw) - bits.OnesCount64(old)
			b.words[w] = nw
		}
	}
}

// minus returns b \ other as a fresh bitset.
func (b *bitset) minus(other *bitset) bitset {
	d := bitset{words: make([]uint64, len(b.words))}
	for w, bw := range b.words {
		if w < len(other.words) {
			bw &^= other.words[w]
		}
		d.words[w] = bw
		d.count += bits.OnesCount64(bw)
	}
	return d
}

// andNotCount reports |b \ other| without materializing it.
func (b *bitset) andNotCount(other *bitset) int {
	n := 0
	for w, bw := range b.words {
		if w < len(other.words) {
			bw &^= other.words[w]
		}
		n += bits.OnesCount64(bw)
	}
	return n
}

// intersectAndNotCount reports |b ∩ and \ not| in one word sweep.
func (b *bitset) intersectAndNotCount(and, not *bitset) int {
	words := b.words
	if len(and.words) < len(words) {
		words = words[:len(and.words)]
	}
	n := 0
	for w, bw := range words {
		bw &= and.words[w]
		if w < len(not.words) {
			bw &^= not.words[w]
		}
		n += bits.OnesCount64(bw)
	}
	return n
}

// andCount reports |b ∩ other|.
func (b *bitset) andCount(other *bitset) int {
	n := 0
	words := b.words
	if len(other.words) < len(words) {
		words = words[:len(other.words)]
	}
	for w, bw := range words {
		n += bits.OnesCount64(bw & other.words[w])
	}
	return n
}

func (b *bitset) clone() bitset {
	return bitset{words: append([]uint64(nil), b.words...), count: b.count}
}

// iterate calls f for every set bit in ascending ID order.
func (b *bitset) iterate(f func(int)) {
	for w, bw := range b.words {
		base := w << 6
		for bw != 0 {
			f(base + bits.TrailingZeros64(bw))
			bw &= bw - 1
		}
	}
}

// EdgeBits is a set of edges keyed by dense EdgeID. Prefer it over EdgeSet on
// every hot path; convert at API boundaries with Graph.EdgeSetOf/EdgeBitsOf.
type EdgeBits struct{ b bitset }

// NewEdgeBits returns an empty edge bitset with room for IDs below capacity.
func NewEdgeBits(capacity int) *EdgeBits {
	s := &EdgeBits{}
	if capacity > 0 {
		s.b.words = make([]uint64, (capacity+63)>>6)
	}
	return s
}

// Add inserts an edge ID.
func (s *EdgeBits) Add(id EdgeID) { s.b.add(int(id)) }

// Has reports membership.
func (s *EdgeBits) Has(id EdgeID) bool { return s.b.has(int(id)) }

// Count reports the number of edges (O(1): the count is maintained).
func (s *EdgeBits) Count() int { return s.b.count }

// Union folds other into s.
func (s *EdgeBits) Union(other *EdgeBits) { s.b.union(&other.b) }

// Minus returns s \ other as a new set.
func (s *EdgeBits) Minus(other *EdgeBits) *EdgeBits { return &EdgeBits{b: s.b.minus(&other.b)} }

// AndNotCount reports |s \ other| without materializing the difference.
func (s *EdgeBits) AndNotCount(other *EdgeBits) int { return s.b.andNotCount(&other.b) }

// AndCount reports |s ∩ other|.
func (s *EdgeBits) AndCount(other *EdgeBits) int { return s.b.andCount(&other.b) }

// IntersectAndNotCount reports |s ∩ and \ not| in one word sweep — the
// marginal-gain popcount of the max-coverage loops.
func (s *EdgeBits) IntersectAndNotCount(and, not *EdgeBits) int {
	return s.b.intersectAndNotCount(&and.b, &not.b)
}

// Clone returns an independent copy.
func (s *EdgeBits) Clone() *EdgeBits { return &EdgeBits{b: s.b.clone()} }

// Iterate calls f for every edge ID in ascending order — deterministic
// iteration with no sort (fgslint: bitset iteration needs no neutralizing
// sort, unlike map ranges).
func (s *EdgeBits) Iterate(f func(EdgeID)) { s.b.iterate(func(i int) { f(EdgeID(i)) }) }

// NodeBits is a set of nodes keyed by NodeID.
type NodeBits struct{ b bitset }

// NewNodeBits returns an empty node bitset with room for IDs below capacity.
func NewNodeBits(capacity int) *NodeBits {
	s := &NodeBits{}
	if capacity > 0 {
		s.b.words = make([]uint64, (capacity+63)>>6)
	}
	return s
}

// NodeBitsOf builds a set from a slice.
func NodeBitsOf(ids []NodeID) *NodeBits {
	s := &NodeBits{}
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Add inserts a node.
func (s *NodeBits) Add(id NodeID) { s.b.add(int(id)) }

// Has reports membership.
func (s *NodeBits) Has(id NodeID) bool { return s.b.has(int(id)) }

// Remove deletes a node.
func (s *NodeBits) Remove(id NodeID) { s.b.remove(int(id)) }

// Count reports the number of nodes (O(1)).
func (s *NodeBits) Count() int { return s.b.count }

// Union folds other into s.
func (s *NodeBits) Union(other *NodeBits) { s.b.union(&other.b) }

// Minus returns s \ other as a new set.
func (s *NodeBits) Minus(other *NodeBits) *NodeBits { return &NodeBits{b: s.b.minus(&other.b)} }

// AndNotCount reports |s \ other|.
func (s *NodeBits) AndNotCount(other *NodeBits) int { return s.b.andNotCount(&other.b) }

// AndCount reports |s ∩ other|.
func (s *NodeBits) AndCount(other *NodeBits) int { return s.b.andCount(&other.b) }

// Clone returns an independent copy.
func (s *NodeBits) Clone() *NodeBits { return &NodeBits{b: s.b.clone()} }

// Iterate calls f for every node ID in ascending order.
func (s *NodeBits) Iterate(f func(NodeID)) { s.b.iterate(func(i int) { f(NodeID(i)) }) }

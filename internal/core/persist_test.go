package core

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/submod"
)

// persistDeltas is the update sequence the persist tests drive through the
// maintainer before (and after) checkpointing: inserts that touch group
// neighborhoods, plus one delete.
func persistDeltas() []Delta {
	return []Delta{
		{Insert: []EdgeUpdate{{From: 4, To: 5, Label: "recommend"}}},
		{Insert: []EdgeUpdate{{From: 3, To: 8, Label: "recommend"}, {From: 12, To: 0, Label: "recommend"}}},
		{Delete: []EdgeUpdate{{From: 4, To: 5, Label: "recommend"}}},
		{Insert: []EdgeUpdate{{From: 6, To: 10, Label: "recommend"}}},
	}
}

// summaryJSON renders the canonical JSON export, the byte-level identity
// the durability layer promises to preserve.
func summaryBytes(t testing.TB, s *Summary, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointCodecRoundTrip: WriteBinary → ReadMaintainerState must
// reproduce the checkpoint exactly, field for field.
func TestCheckpointCodecRoundTrip(t *testing.T) {
	g, groups, util := talentFixture(t)
	m, _ := NewMaintainer(g, groups, util, defaultCfg())
	for _, d := range persistDeltas() {
		if _, err := m.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	st, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMaintainerState(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Selector, st.Selector) {
		t.Fatalf("selector round-trip differs:\n got %+v\nwant %+v", got.Selector, st.Selector)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("checkpoint round-trip differs:\n got %+v\nwant %+v", got, st)
	}
	// The codec requires a buffered reader; a bare one must be refused, not
	// misparsed.
	var raw bytes.Buffer
	if err := st.WriteBinary(&raw); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMaintainerState(onlyReader{&raw}); err == nil {
		t.Fatal("unbuffered reader accepted")
	}
}

// onlyReader hides every interface but io.Reader.
type onlyReader struct{ r *bytes.Buffer }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }

// TestResumeByteIdentical is the determinism contract behind fgstore
// snapshots: checkpoint a maintainer, round-trip the graph through FGSB and
// the checkpoint through its codec, resume — and require the summary bytes
// to match. Then keep applying identical updates to both maintainers and
// require the summaries to stay byte-identical: the checkpoint must carry
// all decision history (selector weights, buckets, utility state), not just
// the current selection.
func TestResumeByteIdentical(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	m, sum := NewMaintainer(g, groups, util, cfg)
	deltas := persistDeltas()
	for _, d := range deltas[:2] {
		var err error
		if sum, err = m.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}

	// Snapshot: FGSB graph bytes + checkpoint bytes, as a snapshot file holds.
	var gbuf bytes.Buffer
	if err := graph.WriteBinary(&gbuf, g); err != nil {
		t.Fatal(err)
	}
	st, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var sbuf bytes.Buffer
	if err := st.WriteBinary(&sbuf); err != nil {
		t.Fatal(err)
	}

	// Recover into fresh objects, exactly as store.Open + server resume do.
	g2, err := graph.ReadBinary(bufio.NewReader(&gbuf))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := ReadMaintainerState(bufio.NewReader(&sbuf))
	if err != nil {
		t.Fatal(err)
	}
	// Groups are rebuilt from their spec (as the daemon does on boot); the
	// utility is bound to the recovered graph.
	_, groups2, _ := talentFixture(t)
	util2 := submod.NewNeighborCoverage(g2, submod.NeighborsIn, "recommend")
	m2, sum2, err := ResumeMaintainer(g2, groups2, util2, cfg, st2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summaryBytes(t, sum2, g2), summaryBytes(t, sum, g); !bytes.Equal(got, want) {
		t.Fatalf("resumed summary differs:\n got %s\nwant %s", got, want)
	}

	// History dependence: future applies must also agree byte for byte.
	for i, d := range deltas[2:] {
		s1, err1 := m.ApplyDelta(d)
		s2, err2 := m2.ApplyDelta(d)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("delta %d: errors diverge: %v vs %v", i, err1, err2)
		}
		if got, want := summaryBytes(t, s2, g2), summaryBytes(t, s1, g); !bytes.Equal(got, want) {
			t.Fatalf("delta %d after resume: summaries diverge:\n got %s\nwant %s", i, got, want)
		}
	}

	// Lifetime counters survive the trip (they feed exported stats).
	st1b, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	st2b, err := m2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st1b, st2b) {
		t.Fatalf("post-resume checkpoints diverge:\n got %+v\nwant %+v", st2b, st1b)
	}
}

// TestResumeRejectsMalformedState pins the validation errors: weight/bucket
// count mismatches and unparsable patterns must fail resume, not corrupt it.
func TestResumeRejectsMalformedState(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	m, _ := NewMaintainer(g, groups, util, cfg)
	st, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	bad := *st
	sel := *st.Selector
	sel.Weights = sel.Weights[:0]
	bad.Selector = &sel
	fresh := func() (*graph.Graph, *submod.Groups, submod.Utility) {
		return talentFixture(t)
	}
	g2, gr2, u2 := fresh()
	if _, _, err := ResumeMaintainer(g2, gr2, u2, cfg, &bad); err == nil {
		t.Fatal("weight count mismatch accepted")
	}

	bad2 := *st
	bad2.Patterns = append([]PatternState(nil), st.Patterns...)
	if len(bad2.Patterns) == 0 {
		t.Skip("fixture selected no patterns")
	}
	bad2.Patterns[0].Pattern = "not a pattern"
	g3, gr3, u3 := fresh()
	if _, _, err := ResumeMaintainer(g3, gr3, u3, cfg, &bad2); err == nil {
		t.Fatal("malformed pattern text accepted")
	}
}

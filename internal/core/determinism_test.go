package core

import (
	"testing"

	"github.com/cwru-db/fgs/internal/gen"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/pattern"
	"github.com/cwru-db/fgs/internal/submod"
)

// requireSameSummary asserts two summaries are byte-identical in every field
// the algorithms define (timings excluded).
func requireSameSummary(t *testing.T, want, got *Summary) {
	t.Helper()
	if want.String() != got.String() {
		t.Fatalf("summaries differ:\nsequential:\n%s\nparallel:\n%s", want, got)
	}
	if len(want.Patterns) != len(got.Patterns) {
		t.Fatalf("|P| differs: %d vs %d", len(want.Patterns), len(got.Patterns))
	}
	for i := range want.Patterns {
		w, g := want.Patterns[i], got.Patterns[i]
		if pattern.CanonicalCode(w.P) != pattern.CanonicalCode(g.P) {
			t.Fatalf("pattern %d differs: %s vs %s", i, w.P, g.P)
		}
		if w.CP != g.CP {
			t.Fatalf("pattern %d CP differs: %d vs %d", i, w.CP, g.CP)
		}
		if len(w.Covered) != len(g.Covered) {
			t.Fatalf("pattern %d |Covered| differs: %d vs %d", i, len(w.Covered), len(g.Covered))
		}
		for j := range w.Covered {
			if w.Covered[j] != g.Covered[j] {
				t.Fatalf("pattern %d Covered[%d] differs", i, j)
			}
		}
		if w.CoveredEdges.Len() != g.CoveredEdges.Len() {
			t.Fatalf("pattern %d |P_E| differs: %d vs %d", i, w.CoveredEdges.Len(), g.CoveredEdges.Len())
		}
		for e := range w.CoveredEdges {
			if !g.CoveredEdges.Has(e) {
				t.Fatalf("pattern %d P_E missing edge %v", i, e)
			}
		}
	}
	if len(want.Covered) != len(got.Covered) {
		t.Fatalf("|P_V| differs: %d vs %d", len(want.Covered), len(got.Covered))
	}
	for i := range want.Covered {
		if want.Covered[i] != got.Covered[i] {
			t.Fatalf("P_V differs at %d", i)
		}
	}
	if want.CL != got.CL {
		t.Fatalf("C_l differs: %d vs %d", want.CL, got.CL)
	}
	if want.Utility != got.Utility {
		t.Fatalf("utility differs: %v vs %v", want.Utility, got.Utility)
	}
	if want.Corrections.Len() != got.Corrections.Len() {
		t.Fatalf("|C| differs: %d vs %d", want.Corrections.Len(), got.Corrections.Len())
	}
	for e := range want.Corrections {
		if !got.Corrections.Has(e) {
			t.Fatalf("corrections missing edge %v", e)
		}
	}
	if len(want.Uncovered) != len(got.Uncovered) {
		t.Fatalf("|uncovered| differs: %d vs %d", len(want.Uncovered), len(got.Uncovered))
	}
	for i := range want.Uncovered {
		if want.Uncovered[i] != got.Uncovered[i] {
			t.Fatalf("uncovered differs at %d", i)
		}
	}
}

// TestAPXFGSParallelDeterminism runs the full select→mine→summarize pipeline
// on the scale-1 LKI dataset with Workers=8 and requires output identical to
// the sequential run. This is the end-to-end acceptance check behind the
// parallel engine: parallelism may change wall time only, never the summary.
func TestAPXFGSParallelDeterminism(t *testing.T) {
	g := gen.LKI(11, 1)
	groups, err := gen.GroupsByAttr(g, "user", "gender", []string{"male", "female"}, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		R: 2, N: 40,
		Mining: mining.Config{MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 80},
	}
	seq, err := APXFGS(g, groups, submod.NewNeighborCoverage(g, submod.NeighborsIn, "corev"), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		cfg := base
		cfg.Workers = w
		par, err := APXFGS(g, groups, submod.NewNeighborCoverage(g, submod.NeighborsIn, "corev"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireSameSummary(t, seq, par)
	}
}

// TestKAPXFGSParallelDeterminism covers the k-bounded variant the same way:
// its swap phase consumes the candidate list in generation order, so it too
// must be invariant under the worker count.
func TestKAPXFGSParallelDeterminism(t *testing.T) {
	g := gen.LKI(11, 1)
	groups, err := gen.GroupsByAttr(g, "user", "gender", []string{"male", "female"}, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		R: 2, K: 6, N: 40,
		Mining: mining.Config{MaxNodes: 4, MaxLiterals: 2, MaxPatterns: 80},
	}
	seq, err := KAPXFGS(g, groups, submod.NewNeighborCoverage(g, submod.NeighborsIn, "corev"), base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Workers = 8
	par, err := KAPXFGS(g, groups, submod.NewNeighborCoverage(g, submod.NeighborsIn, "corev"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSummary(t, seq, par)
}

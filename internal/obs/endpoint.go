package obs

import (
	"sync"
	"time"
)

// EndpointStats aggregates per-endpoint request counters and latency
// histograms for a serving layer (fgsd's HTTP handlers, fgsbench's metrics
// listener). One instance covers every endpoint of one server; endpoints
// register lazily on first observation, so handlers need no setup.
//
// Latency is bucketed in milliseconds: with the fixed power-of-two bounds
// (1ms, 2ms, ..., 2^15ms ≈ 33s, +Inf) the histogram spans cached
// sub-millisecond hits through multi-second summarize calls without
// configuration.
//
// Like the rest of the package it is reporting-only: nothing here feeds
// request handling decisions, and all methods are safe for concurrent use.
type EndpointStats struct {
	mu    sync.Mutex
	order []string // registration order; gathers never iterate the map
	recs  map[string]*endpointRec
}

type endpointRec struct {
	requests Counter
	errors   Counter
	latency  Histogram
}

// NewEndpointStats returns an empty per-endpoint collector.
func NewEndpointStats() *EndpointStats {
	return &EndpointStats{recs: make(map[string]*endpointRec)}
}

// Observe records one completed request: its endpoint, its wall-clock
// duration, and whether it failed server-side (5xx). Nil-safe.
func (s *EndpointStats) Observe(endpoint string, dur time.Duration, failed bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	rec, ok := s.recs[endpoint]
	if !ok {
		rec = &endpointRec{}
		s.recs[endpoint] = rec
		s.order = append(s.order, endpoint)
	}
	s.mu.Unlock()
	rec.requests.Inc()
	if failed {
		rec.errors.Inc()
	}
	rec.latency.Observe(int64(dur / time.Millisecond))
}

// ObsMetrics snapshots every endpoint's series in registration order
// (Registry.Gather re-sorts by identity, so the order only matters for
// reproducibility of direct calls).
func (s *EndpointStats) ObsMetrics() []Metric {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	order := append([]string(nil), s.order...)
	recs := make([]*endpointRec, len(order))
	for i, name := range order {
		recs[i] = s.recs[name]
	}
	s.mu.Unlock()

	out := make([]Metric, 0, 3*len(order))
	for i, name := range order {
		labels := []Label{{Key: "endpoint", Val: name}}
		hist := recs[i].latency.Snapshot()
		out = append(out,
			Metric{Name: "fgs_http_requests_total", Help: "HTTP requests served, by endpoint", Kind: KindCounter, Labels: labels, Value: float64(recs[i].requests.Load())},
			Metric{Name: "fgs_http_errors_total", Help: "HTTP requests failed server-side (5xx), by endpoint", Kind: KindCounter, Labels: labels, Value: float64(recs[i].errors.Load())},
			Metric{Name: "fgs_http_latency_ms", Help: "HTTP request latency in milliseconds, by endpoint", Kind: KindHistogram, Labels: labels, Hist: &hist},
		)
	}
	return out
}

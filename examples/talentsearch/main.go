// Talent search with equal opportunity (the paper's Fig. 11 case study).
//
// A recruiter's pattern query for Internet-industry candidates returns an
// answer that mirrors the network's 77/23 gender skew. A fair 2-summary
// computed under [40,60] coverage bounds for both genders yields a balanced
// candidate shortlist, and doubles as a materialized view that answers the
// query orders of magnitude faster.
package main

import (
	"fmt"
	"log"
	"time"

	fgs "github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/datasets"
)

func main() {
	g := datasets.LKI(7, 1)
	fmt.Printf("LKI: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// P8: Internet-industry users with at least one co-reviewer.
	p8 := &fgs.Pattern{
		Focus: 0,
		Nodes: []fgs.PatternNode{
			{Label: "user", Literals: []fgs.Literal{{Key: "industry", Val: "Internet"}}},
			{Label: "user"},
		},
		Edges: []fgs.PatternEdge{{From: 1, To: 0, Label: "corev"}},
	}
	m := fgs.NewMatcher(g, 0)
	start := time.Now()
	full := m.Matches(p8)
	fullDur := time.Since(start)
	fmt.Printf("\nP8 full query: %d candidates in %v, %.0f%% male\n",
		len(full), fullDur, malePct(g, full))

	// The fair summary: both genders covered within [40,60], utility =
	// distinct co-reviewers reached.
	groups, err := datasets.GroupsByAttr(g, "user", "gender", []string{"male", "female"}, 40, 60)
	if err != nil {
		log.Fatal(err)
	}
	cfg := fgs.Config{R: 2, N: 100}
	summary, err := fgs.Summarize(g, groups, fgs.NewNeighborCoverage(g, fgs.NeighborsIn, "corev"), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfair 2-summary: %d candidates, %.0f%% male, %d patterns, |C|=%d\n",
		len(summary.Covered), malePct(g, summary.Covered), summary.NumPatterns(), summary.Corrections.Len())
	for i, pi := range summary.Patterns {
		if i == 3 {
			fmt.Printf("  ... and %d more patterns\n", len(summary.Patterns)-3)
			break
		}
		fmt.Printf("  %s (covers %d)\n", pi.P, len(pi.Covered))
	}

	// Query the summary as a materialized view.
	start = time.Now()
	var view []fgs.NodeID
	for _, v := range summary.Covered {
		if ind, ok := g.AttrString(v, "industry"); ok && ind == "Internet" && m.MatchAt(p8, v) {
			view = append(view, v)
		}
	}
	viewDur := time.Since(start)
	speedup := float64(fullDur) / float64(viewDur)
	fmt.Printf("\nview-based query: %d representative candidates in %v (%.0fx faster), %.0f%% male\n",
		len(view), viewDur, speedup, malePct(g, view))
}

func malePct(g *fgs.Graph, nodes []fgs.NodeID) float64 {
	if len(nodes) == 0 {
		return 0
	}
	n := 0
	for _, v := range nodes {
		if got, ok := g.AttrString(v, "gender"); ok && got == "male" {
			n++
		}
	}
	return 100 * float64(n) / float64(len(nodes))
}

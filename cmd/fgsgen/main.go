// Command fgsgen generates the synthetic evaluation datasets in the text
// graph format, for use with cmd/fgs or external tooling.
//
// Usage:
//
//	fgsgen -dataset lki -scale 1 -seed 42 -o lki.graph
//	fgsgen -dataset pandemic -n 10000 -o contacts.graph
package main

import (
	"flag"
	"fmt"
	"os"

	fgs "github.com/cwru-db/fgs"
	"github.com/cwru-db/fgs/datasets"
)

func main() {
	var (
		dataset = flag.String("dataset", "lki", "dataset to generate: dbp, lki, cite, pandemic")
		scale   = flag.Int("scale", 1, "size multiplier for dbp/lki/cite")
		n       = flag.Int("n", 10000, "citizen count for pandemic")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *fgs.Graph
	switch *dataset {
	case "dbp":
		g = datasets.DBP(*seed, *scale)
	case "lki":
		g = datasets.LKI(*seed, *scale)
	case "cite":
		g = datasets.Cite(*seed, *scale)
	case "pandemic":
		g = datasets.Pandemic(*seed, *n)
	default:
		fmt.Fprintf(os.Stderr, "fgsgen: unknown dataset %q (want dbp, lki, cite, or pandemic)\n", *dataset)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fgsgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := fgs.WriteGraph(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "fgsgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fgsgen: %s: %d nodes, %d edges\n", *dataset, g.NumNodes(), g.NumEdges())
}

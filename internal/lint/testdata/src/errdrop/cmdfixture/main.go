// Command packages are exempt from errdrop: binaries best-effort-close on
// exit paths and are audited by hand.
package main

type closer struct{}

func (c *closer) Close() error { return nil }

func main() {
	c := &closer{}
	c.Close() // ok: package main is exempt
}

package submod

import (
	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/obs"
)

// Decision describes what the streaming selector did with one arriving node.
type Decision int

// Streaming outcomes.
const (
	// Rejected: the node was not selected (it is kept in its group bucket
	// for post-processing).
	Rejected Decision = iota
	// Accepted: the node was added without evicting anyone.
	Accepted
	// Swapped: the node replaced an earlier selection (see Evicted).
	Swapped
)

// StreamResult reports the outcome of processing one node.
type StreamResult struct {
	Decision Decision
	// Evicted is the node removed on a swap; valid only when Decision is
	// Swapped.
	Evicted graph.NodeID
}

// Streamer is the streaming fair submodular selector of Section VI: nodes
// arrive one at a time; each is accepted when the partial selection is
// extendable (procedure ExtendableM), swapped in when its gain sufficiently
// exceeds the weight of a removable earlier pick (the swap rule of [17],
// gain(v) >= 2·w(v⁻)), and rejected otherwise. Rejected nodes are bucketed
// per group so post-processing can repair unmet lower bounds.
//
// The overall guarantee is the ¼-approximation of streaming fair submodular
// maximization that Theorem 6 builds on.
type Streamer struct {
	groups *Groups
	util   Utility
	n      int

	selected graph.NodeSet
	order    []graph.NodeID // insertion order, for deterministic output
	counts   []int
	weights  map[graph.NodeID]float64 // w(v) recorded at acceptance time
	buckets  [][]graph.NodeID         // per-group rejected nodes

	// Decision counters for ObsMetrics; plain ints — the streamer is not
	// concurrent.
	accepted, swapped, rejected, postAdded int64
}

// NewStreamer returns a streaming selector over the given groups, utility,
// and budget n. The utility's state is owned by the streamer from now on.
func NewStreamer(groups *Groups, util Utility, n int) *Streamer {
	util.Reset()
	return &Streamer{
		groups:   groups,
		util:     util,
		n:        n,
		selected: graph.NewNodeSet(n),
		counts:   make([]int, groups.Len()),
		weights:  make(map[graph.NodeID]float64, n),
		buckets:  make([][]graph.NodeID, groups.Len()),
	}
}

// Process handles one arriving group node and returns the decision. Nodes
// outside every group, or already selected, are rejected outright.
func (s *Streamer) Process(v graph.NodeID) StreamResult {
	gi, ok := s.groups.IndexOf(v)
	if !ok || s.selected.Has(v) {
		s.rejected++
		return StreamResult{Decision: Rejected}
	}
	w := s.util.Marginal(v)

	if len(s.order) < s.n && s.groups.ExtendableM(s.counts, gi, s.n) {
		s.accept(v, gi, w)
		s.accepted++
		return StreamResult{Decision: Accepted}
	}

	// Swap rule: find the removable selected node with the smallest recorded
	// weight whose eviction keeps the selection feasible after adding v.
	evict := graph.NodeID(-1)
	evictWeight := 0.0
	for _, u := range s.order {
		ui, _ := s.groups.IndexOf(u)
		if !s.groups.SwapFeasible(s.counts, ui, gi, s.n) {
			continue
		}
		if evict < 0 || s.weights[u] < evictWeight {
			evict = u
			evictWeight = s.weights[u]
		}
	}
	if evict >= 0 && w >= 2*evictWeight {
		s.remove(evict)
		s.accept(v, gi, w)
		s.swapped++
		return StreamResult{Decision: Swapped, Evicted: evict}
	}

	s.buckets[gi] = append(s.buckets[gi], v)
	s.rejected++
	return StreamResult{Decision: Rejected}
}

func (s *Streamer) accept(v graph.NodeID, gi int, w float64) {
	s.util.Add(v)
	s.selected.Add(v)
	s.order = append(s.order, v)
	s.counts[gi]++
	s.weights[v] = w
}

func (s *Streamer) remove(v graph.NodeID) {
	gi, _ := s.groups.IndexOf(v)
	s.util.Remove(v)
	s.selected.Remove(v)
	s.counts[gi]--
	delete(s.weights, v)
	for i, u := range s.order {
		if u == v {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Selected returns the current selection in insertion order. The slice is a
// copy.
func (s *Streamer) Selected() []graph.NodeID {
	return append([]graph.NodeID(nil), s.order...)
}

// Counts returns the current per-group selection counts (a copy).
func (s *Streamer) Counts() []int { return append([]int(nil), s.counts...) }

// DeficientGroups lists groups whose selection count is below the lower
// bound; post-processing must repair these from the buckets.
func (s *Streamer) DeficientGroups() []int {
	var out []int
	for i := 0; i < s.groups.Len(); i++ {
		if s.counts[i] < s.groups.At(i).Lower {
			out = append(out, i)
		}
	}
	return out
}

// Bucket returns the rejected nodes of a group, in arrival order.
func (s *Streamer) Bucket(gi int) []graph.NodeID { return s.buckets[gi] }

// PostSelect repairs unmet lower bounds from the buckets: for every deficient
// group it repeatedly adds the bucket node with the highest current marginal
// gain while the selection stays extendable. The paper's PostSelect does the
// same, enriching V_p (the caller then enriches P; see core.Online). It
// returns the nodes added.
func (s *Streamer) PostSelect() []graph.NodeID {
	var added []graph.NodeID
	for _, gi := range s.DeficientGroups() {
		need := s.groups.At(gi).Lower - s.counts[gi]
		for need > 0 {
			best := -1
			bestGain := -1.0
			for i, v := range s.buckets[gi] {
				if s.selected.Has(v) {
					continue
				}
				if g := s.util.Marginal(v); g > bestGain {
					bestGain = g
					best = i
				}
			}
			if best < 0 || !s.groups.ExtendableM(s.counts, gi, s.n) {
				break
			}
			v := s.buckets[gi][best]
			s.buckets[gi] = append(s.buckets[gi][:best], s.buckets[gi][best+1:]...)
			s.accept(v, gi, s.util.Marginal(v))
			s.postAdded++
			added = append(added, v)
			need--
		}
	}
	return added
}

// Value returns the utility of the current selection.
func (s *Streamer) Value() float64 { return s.util.Value() }

// ObsMetrics snapshots the streamer's decision counters and per-group
// selection progress, implementing obs.Source.
func (s *Streamer) ObsMetrics() []obs.Metric {
	out := []obs.Metric{
		{Name: "fgs_stream_decisions_total", Help: "Streaming selector decisions by kind.", Kind: obs.KindCounter, Labels: []obs.Label{{Key: "decision", Val: "accepted"}}, Value: float64(s.accepted)},
		{Name: "fgs_stream_decisions_total", Kind: obs.KindCounter, Labels: []obs.Label{{Key: "decision", Val: "swapped"}}, Value: float64(s.swapped)},
		{Name: "fgs_stream_decisions_total", Kind: obs.KindCounter, Labels: []obs.Label{{Key: "decision", Val: "rejected"}}, Value: float64(s.rejected)},
		{Name: "fgs_stream_post_added_total", Help: "Nodes added by PostSelect to repair lower bounds.", Kind: obs.KindCounter, Value: float64(s.postAdded)},
	}
	for gi := 0; gi < s.groups.Len(); gi++ {
		out = append(out, obs.Metric{
			Name:   "fgs_stream_selected",
			Help:   "Current per-group selection count in the streaming selector.",
			Kind:   obs.KindGauge,
			Labels: []obs.Label{{Key: "group", Val: s.groups.At(gi).Name}},
			Value:  float64(s.counts[gi]),
		})
	}
	return out
}

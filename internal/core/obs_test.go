package core

import (
	"bytes"
	"testing"
	"time"

	"github.com/cwru-db/fgs/internal/obs"
)

// TestObserverInertForSummaries is the observability safety property: running
// any algorithm with a full collector attached (spans + registry + frozen
// clock) must produce a byte-identical summary to running with collection
// off. The observer may only ever read what happens, never steer it.
func TestObserverInertForSummaries(t *testing.T) {
	type algo struct {
		name string
		run  func(t *testing.T, o *obs.Observer) []byte
	}
	algos := []algo{
		{"apxfgs", func(t *testing.T, o *obs.Observer) []byte {
			g, groups, util := talentFixture(t)
			cfg := defaultCfg()
			cfg.Obs = o
			s, err := APXFGS(g, groups, util, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := s.WriteJSON(&buf, g); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}},
		{"kapxfgs", func(t *testing.T, o *obs.Observer) []byte {
			g, groups, util := talentFixture(t)
			cfg := defaultCfg()
			cfg.K = 3
			cfg.Obs = o
			s, err := KAPXFGS(g, groups, util, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := s.WriteJSON(&buf, g); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}},
		{"online", func(t *testing.T, o *obs.Observer) []byte {
			g, groups, util := talentFixture(t)
			cfg := defaultCfg()
			cfg.K = 4
			cfg.Obs = o
			on := NewOnline(g, groups, util, cfg)
			on.ProcessAll(groups.All())
			s, err := on.Finish()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := s.WriteJSON(&buf, g); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}},
	}
	for _, a := range algos {
		t.Run(a.name, func(t *testing.T) {
			off := a.run(t, nil)
			on := a.run(t, obs.NewObserver(obs.NewFrozen(time.Unix(0, 0))))
			if !bytes.Equal(off, on) {
				t.Fatalf("summary changed when tracing was enabled:\noff: %s\non:  %s", off, on)
			}
		})
	}
}

// TestStatsFromSpans checks that core.Stats is a faithful view of the span
// tree: phase durations come from the recorded spans (driven here by a
// frozen clock the algorithms cannot tick), and phases appear in execution
// order.
func TestStatsFromSpans(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	cfg.Obs = obs.NewObserver(obs.NewFrozen(time.Unix(100, 0)))
	s, err := APXFGS(g, groups, util, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Stats.Phases) == 0 {
		t.Fatal("no phases recorded")
	}
	wantOrder := []string{PhaseSelect, PhaseMine, PhaseSummarize}
	for i, ph := range s.Stats.Phases {
		if i >= len(wantOrder) || ph.Name != wantOrder[i] {
			t.Fatalf("phase order %v, want prefix of %v", s.Stats.Phases, wantOrder)
		}
		if ph.Count != 1 {
			t.Fatalf("phase %s ran %d times, want 1", ph.Name, ph.Count)
		}
		// The frozen clock never advances, so every span is zero-length.
		if ph.Time != 0 {
			t.Fatalf("phase %s duration %v under a frozen clock", ph.Name, ph.Time)
		}
	}
	if s.Stats.Candidates == 0 {
		t.Fatal("candidate count not recorded")
	}
	if got := s.Stats.Total(); got != 0 {
		t.Fatalf("Total() = %v under a frozen clock", got)
	}
}

package core

import (
	"math/rand"
	"strconv"
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
	"github.com/cwru-db/fgs/internal/mining"
	"github.com/cwru-db/fgs/internal/submod"
)

// talentFixture builds the Fig. 2 flavor network: four candidates (two per
// gender) each recommended by two users; v0's recommenders have their own
// recommenders, so r=2 neighborhoods differ in depth.
func talentFixture(t testing.TB) (*graph.Graph, *submod.Groups, submod.Utility) {
	t.Helper()
	g := graph.New()
	v0 := g.AddNode("user", map[string]string{"exp": "5", "industry": "Internet", "gender": "m"})
	v1 := g.AddNode("user", nil)
	v2 := g.AddNode("user", nil)
	g.AddNode("user", nil) // v3
	g.AddNode("user", nil) // v4
	v5 := g.AddNode("user", map[string]string{"exp": "4", "industry": "Internet", "gender": "m"})
	v6 := g.AddNode("user", nil)
	v7 := g.AddNode("user", nil)
	v8 := g.AddNode("user", map[string]string{"exp": "4", "industry": "Internet", "gender": "f"})
	v9 := g.AddNode("user", nil)
	v10 := g.AddNode("user", map[string]string{"exp": "4", "industry": "Internet", "gender": "f"})
	v11 := g.AddNode("user", nil)
	v12 := g.AddNode("user", nil)
	edges := [][2]graph.NodeID{
		{v1, v0}, {v2, v0}, {3, v1}, {4, v2},
		{v6, v5}, {v7, v5},
		{v9, v8}, {v7, v8},
		{v11, v10}, {v12, v10},
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1], "recommend"); err != nil {
			t.Fatal(err)
		}
	}
	groups, err := submod.NewGroups(
		submod.Group{Name: "male", Members: []graph.NodeID{v0, v5}, Lower: 1, Upper: 2},
		submod.Group{Name: "female", Members: []graph.NodeID{v8, v10}, Lower: 1, Upper: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	util := submod.NewNeighborCoverage(g, submod.NeighborsIn, "recommend")
	return g, groups, util
}

// randomFixture builds a seeded random social network with two gender groups
// for property-style tests.
func randomFixture(t testing.TB, seed int64, nodes, edges, groupSize int) (*graph.Graph, *submod.Groups, submod.Utility) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < nodes; i++ {
		attrs := map[string]string{}
		if i < groupSize*2 {
			attrs["exp"] = strconv.Itoa(1 + rng.Intn(5))
			// A second, higher-cardinality attribute keeps full-literal
			// fallback patterns selective, mirroring real profiles.
			attrs["city"] = strconv.Itoa(rng.Intn(25))
			if rng.Intn(3) == 0 {
				attrs["industry"] = "Internet"
			}
		}
		g.AddNode("user", attrs)
	}
	for i := 0; i < edges; i++ {
		_ = g.AddEdge(graph.NodeID(rng.Intn(nodes)), graph.NodeID(rng.Intn(nodes)), "recommend")
	}
	var males, females []graph.NodeID
	for i := 0; i < groupSize*2; i++ {
		if i%2 == 0 {
			males = append(males, graph.NodeID(i))
		} else {
			females = append(females, graph.NodeID(i))
		}
	}
	lo, hi := 1, groupSize
	groups, err := submod.NewGroups(
		submod.Group{Name: "male", Members: males, Lower: lo, Upper: hi},
		submod.Group{Name: "female", Members: females, Lower: lo, Upper: hi},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g, groups, submod.NewNeighborCoverage(g, submod.NeighborsIn, "recommend")
}

func defaultCfg() Config {
	return Config{
		R: 2,
		N: 4,
		Mining: mining.Config{
			MaxNodes:    4,
			MaxLiterals: 2,
			MaxPatterns: 120,
		},
	}
}

// assertFeasibleLossless runs Verify with permissive thresholds and demands
// structural feasibility plus losslessness.
func assertFeasibleLossless(t *testing.T, g *graph.Graph, groups *submod.Groups, util submod.Utility, cfg Config, s *Summary) {
	t.Helper()
	if len(s.Uncovered) != 0 {
		t.Fatalf("uncovered selected nodes: %v", s.Uncovered)
	}
	rep := Verify(g, groups, util.Clone(), cfg, s, 1<<30, -1)
	if !rep.Feasible() {
		t.Fatalf("summary not feasible: %s\n%s", rep, s)
	}
	missing, spurious := s.Reconstruct(g)
	if missing.Len() != 0 || spurious.Len() != 0 {
		t.Fatalf("reconstruction not lossless: missing=%d spurious=%d", missing.Len(), spurious.Len())
	}
}

package core

import (
	"testing"

	"github.com/cwru-db/fgs/internal/graph"
)

func TestMaintainerInitialSummary(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	_, s := NewMaintainer(g, groups, util, cfg)
	if s == nil {
		t.Fatal("nil summary")
	}
	missing, spurious := s.Reconstruct(g)
	if missing.Len() != 0 || spurious.Len() != 0 {
		t.Fatalf("initial summary not lossless: %d/%d", missing.Len(), spurious.Len())
	}
	counts := groups.Counts(s.Covered)
	if !groups.SatisfiesBounds(counts) {
		t.Fatalf("initial bounds violated: %v", counts)
	}
}

func TestMaintainerBatchAwayFromGroupsIsNoop(t *testing.T) {
	g, groups, util := talentFixture(t)
	// Add two isolated nodes far from every group node.
	a := g.AddNode("org", nil)
	b := g.AddNode("org", nil)
	m, before := NewMaintainer(g, groups, util, defaultCfg())
	after, err := m.ApplyBatch([]EdgeUpdate{{From: a, To: b, Label: "member"}})
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if len(after.Covered) != len(before.Covered) || after.Corrections.Len() != before.Corrections.Len() {
		t.Fatal("summary changed by an edge outside every r-hop neighborhood")
	}
}

func TestMaintainerBatchUpdatesCorrections(t *testing.T) {
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	m, before := NewMaintainer(g, groups, util, cfg)

	// Insert an edge inside a covered node's 2-hop neighborhood: a new
	// recommender for v0's recommender v1 (node 3 -> v2 say; pick nodes that
	// exist: add edge from v12 (11? use known ids) — attach a fresh node.
	fresh := g.AddNode("user", nil)
	covered := before.Covered
	if len(covered) == 0 {
		t.Fatal("nothing covered")
	}
	after, err := m.ApplyBatch([]EdgeUpdate{{From: fresh, To: covered[0], Label: "recommend"}})
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	missing, spurious := after.Reconstruct(g)
	if missing.Len() != 0 || spurious.Len() != 0 {
		t.Fatalf("post-batch summary not lossless: missing=%d spurious=%d", missing.Len(), spurious.Len())
	}
	// The new edge is inside E^r of the covered node, so the summary must
	// describe it (as pattern edge or correction).
	lid, _ := g.EdgeLabelID("recommend")
	ref := graph.EdgeRef{From: fresh, To: covered[0], Label: lid}
	if !after.DescribedEdges().Has(ref) {
		t.Fatal("inserted edge not described by updated summary")
	}
}

func TestMaintainerReportsBadEdges(t *testing.T) {
	g, groups, util := talentFixture(t)
	m, _ := NewMaintainer(g, groups, util, defaultCfg())
	_, err := m.ApplyBatch([]EdgeUpdate{{From: 0, To: 9999, Label: "recommend"}})
	if err == nil {
		t.Fatal("missing endpoint accepted")
	}
	// A mixed batch applies the good edge and reports the bad one.
	fresh := g.AddNode("user", nil)
	s, err := m.ApplyBatch([]EdgeUpdate{
		{From: 0, To: 9999, Label: "recommend"},
		{From: fresh, To: m.Selected()[0], Label: "recommend"},
	})
	if err == nil {
		t.Fatal("bad edge not reported")
	}
	if s == nil {
		t.Fatal("summary should still be returned")
	}
	missing, _ := s.Reconstruct(g)
	if missing.Len() != 0 {
		t.Fatal("good edge of mixed batch not applied to summary")
	}
}

func TestMaintainerBoundsHoldAcrossBatches(t *testing.T) {
	g, groups, util := randomFixture(t, 71, 60, 140, 8)
	cfg := defaultCfg()
	cfg.N = 6
	m, s := NewMaintainer(g, groups, util, cfg)
	for batch := 0; batch < 5; batch++ {
		// Wire fresh recommenders to group nodes round-robin.
		var updates []EdgeUpdate
		for i := 0; i < 4; i++ {
			fresh := g.AddNode("user", nil)
			target := groups.All()[(batch*4+i)%groups.Size()]
			updates = append(updates, EdgeUpdate{From: fresh, To: target, Label: "recommend"})
		}
		var err error
		s, err = m.ApplyBatch(updates)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		counts := groups.Counts(s.Covered)
		for gi := 0; gi < groups.Len(); gi++ {
			if counts[gi] > groups.At(gi).Upper {
				t.Fatalf("batch %d: upper bound violated: %v", batch, counts)
			}
		}
		missing, spurious := s.Reconstruct(g)
		if missing.Len() != 0 || spurious.Len() != 0 {
			t.Fatalf("batch %d: not lossless (missing=%d spurious=%d)", batch, missing.Len(), spurious.Len())
		}
	}
}

func TestMaintainerSelectionImprovesWithEdges(t *testing.T) {
	// A previously unattractive group node that gains many fresh neighbors
	// should be able to enter the selection via the streaming swap rule.
	g, groups, util := talentFixture(t)
	cfg := defaultCfg()
	cfg.N = 2 // only one node per group fits
	m, before := NewMaintainer(g, groups, util, cfg)
	// Find the unselected male.
	males := groups.At(0).Members
	sel := graph.NodeSetOf(m.Selected())
	var outsider graph.NodeID = -1
	for _, v := range males {
		if !sel.Has(v) {
			outsider = v
			break
		}
	}
	if outsider < 0 {
		t.Skip("both males selected; fixture too small for this scenario")
	}
	var updates []EdgeUpdate
	for i := 0; i < 8; i++ {
		fresh := g.AddNode("user", nil)
		updates = append(updates, EdgeUpdate{From: fresh, To: outsider, Label: "recommend"})
	}
	after, err := m.ApplyBatch(updates)
	if err != nil {
		t.Fatal(err)
	}
	if after.Utility < before.Utility {
		t.Fatalf("utility degraded after strengthening a node: %.1f -> %.1f", before.Utility, after.Utility)
	}
	nowSel := graph.NodeSetOf(m.Selected())
	if !nowSel.Has(outsider) {
		t.Fatalf("outsider %d with 8 fresh neighbors not swapped in", outsider)
	}
}

func TestMaintainerTimeBatch(t *testing.T) {
	g, groups, util := talentFixture(t)
	m, _ := NewMaintainer(g, groups, util, defaultCfg())
	fresh := g.AddNode("user", nil)
	s, dur, err := m.TimeBatch([]EdgeUpdate{{From: fresh, To: m.Selected()[0], Label: "recommend"}})
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || dur < 0 {
		t.Fatal("TimeBatch returned bad values")
	}
}

package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	g, _ := buildDiamond(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestReadRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"bad record", "x 1 2\n"},
		{"node missing label", "n 0\n"},
		{"non-dense node id", "n 5 user\n"},
		{"bad node id", "n zero user\n"},
		{"bad attribute", "n 0 user noequals\n"},
		{"edge missing field", "e 0 1\n"},
		{"edge bad endpoint", "n 0 user\ne a 0 x\n"},
		{"edge to missing node", "n 0 user\ne 0 7 x\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(c.input)); err == nil {
				t.Fatalf("Read(%q) succeeded, want error", c.input)
			}
		})
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	input := "# header\n\nn 0 user exp=5\n  \nn 1 org\ne 0 1 member\n# trailer\n"
	g, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestEscapeTokenRoundTrip(t *testing.T) {
	cases := []string{"plain", "has space", "k=v", "tab\there", "100%", "", "%s literal", "a b=c %"}
	for _, s := range cases {
		if got := unescapeToken(escapeToken(s)); got != s {
			t.Errorf("round trip %q -> %q -> %q", s, escapeToken(s), got)
		}
		if strings.ContainsAny(escapeToken(s), " \t=") {
			t.Errorf("escapeToken(%q) = %q still has delimiters", s, escapeToken(s))
		}
	}
}

func TestEscapeTokenRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		// The format is byte-oriented within a token; restrict to printable
		// single-line content, which is what labels and attrs contain.
		s = strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' {
				return '_'
			}
			return r
		}, s)
		return unescapeToken(escapeToken(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripRandomGraphs is a property test: any graph the builder can
// produce must survive Write/Read unchanged.
func TestRoundTripRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 30, 60)
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("trial %d: Write: %v", trial, err)
		}
		g2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: Read: %v", trial, err)
		}
		assertGraphsEqual(t, g, g2)
	}
}

// randomGraph builds a seeded random attributed graph for property tests.
func randomGraph(rng *rand.Rand, n, m int) *Graph {
	g := New()
	labels := []string{"user", "org", "paper", "label with space"}
	keys := []string{"exp", "industry", "gen=der"}
	vals := []string{"1", "2", "Internet", "a b"}
	for i := 0; i < n; i++ {
		attrs := map[string]string{}
		for _, k := range keys {
			if rng.Intn(2) == 0 {
				attrs[k] = vals[rng.Intn(len(vals))]
			}
		}
		g.AddNode(labels[rng.Intn(len(labels))], attrs)
	}
	elabels := []string{"recommend", "cite", "member of"}
	for i := 0; i < m; i++ {
		from := NodeID(rng.Intn(n))
		to := NodeID(rng.Intn(n))
		// Duplicates are rejected by AddEdge; that is fine here.
		_ = g.AddEdge(from, to, elabels[rng.Intn(len(elabels))])
	}
	return g
}

func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for id := NodeID(0); int(id) < a.NumNodes(); id++ {
		if a.LabelOf(id) != b.LabelOf(id) {
			t.Fatalf("node %d label differs: %q vs %q", id, a.LabelOf(id), b.LabelOf(id))
		}
		aAttrs := a.Attrs(id)
		bAttrs := b.Attrs(id)
		if len(aAttrs) != len(bAttrs) {
			t.Fatalf("node %d attr counts differ", id)
		}
		for _, attr := range aAttrs {
			k := a.AttrKeyName(attr.Key)
			av := a.AttrValName(attr.Val)
			bv, ok := b.AttrString(id, k)
			if !ok || av != bv {
				t.Fatalf("node %d attr %q differs: %q vs %q (ok=%v)", id, k, av, bv, ok)
			}
		}
		for _, e := range a.Out(id) {
			lbl, ok := b.EdgeLabelID(a.EdgeLabelName(e.Label))
			if !ok || !b.HasEdge(id, e.To, lbl) {
				t.Fatalf("edge (%d,%d,%s) missing after round trip", id, e.To, a.EdgeLabelName(e.Label))
			}
		}
	}
}
